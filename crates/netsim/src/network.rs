//! The cycle-stepped network simulator.
//!
//! [`Network`] instantiates runtime state from a [`NetworkSpec`], a
//! [`QosPolicy`] and one traffic generator per source, and advances the whole
//! network one cycle at a time. Each cycle proceeds through the following
//! phases:
//!
//! 1. frame rollover (QOS bandwidth counters are flushed),
//! 2. delivery of matured events (flit arrivals, credit returns, ACK/NACK
//!    messages, preemption probes, DRAM bank completions),
//! 3. traffic generation and injection at the sources,
//! 4. route computation for newly arrived packet heads,
//! 5. virtual-channel allocation (arbitration) and preemption probing,
//! 6. flit launches from granted transfers onto the channels.
//!
//! The model implements credit-based virtual cut-through flow control: a
//! packet is granted an output only when a whole-packet buffer (virtual
//! channel) is available downstream; credits are returned when the downstream
//! VC is released. Preemptive QOS policies may discard lower-priority
//! resident packets to resolve priority inversion; discarded packets are
//! NACKed over a dedicated ACK network and retransmitted by their source.

use crate::closed_loop::{
    requester_line, ClosedLoopSpec, ClosedLoopState, DeferredRetry, DramBackpressure, DramRequest,
    DramScheduler, InFlightRequest, StalledRequest,
};
use crate::config::SimConfig;
use crate::error::SimError;
use crate::event::{Event, EventQueue};
use crate::fault::{FaultPlan, FaultState};
use crate::ids::{Cycle, FlowId, InPortId, NodeId, PacketId, VcId};
use crate::packet::{GeneratedPacket, Packet, PacketClass, PacketGenerator, PacketStore};
use crate::port::{Feeder, TargetCreditState, Transfer};
use crate::qos::{QosPolicy, RouterQos};
use crate::router::{compute_route, resolve_target_idx, RouterState};
use crate::sink::SinkState;
use crate::source::{InjectionTransfer, SourceState};
use crate::spec::{NetworkSpec, TargetEndpoint};
use crate::stats::NetStats;
use crate::vc::VcState;
use taqos_telemetry::{FrameSampler, TraceEvent, TraceHook, TraceSink};

/// What a DRAM-backed controller decided about a packet delivered at a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DramAdmission {
    /// Not a closed-loop request at a DRAM-modelled controller: the delivery
    /// proceeds exactly as without a DRAM model.
    None,
    /// Admitted to the controller's bounded request queue.
    Accept,
    /// Queue full under a priority-aware scheduler, but the arrival strictly
    /// outranks the lowest-priority queued request: the request at the
    /// carried queue index is evicted (NACKed back to its source) and the
    /// arrival admitted in its place. The index is computed once here, at
    /// the admission decision, and consumed unchanged by the delivery hook.
    AcceptEvict(usize),
    /// Queue full, Stall backpressure: parked in the stall lane, withholding
    /// the ejection-slot credit.
    Stall,
    /// Queue full, Nack backpressure: rejected and retransmitted; the
    /// delivery is not recorded.
    Reject,
}

impl DramAdmission {
    /// Whether the request enters the controller's DRAM pipeline.
    fn enters_pipeline(self) -> bool {
        matches!(
            self,
            DramAdmission::Accept | DramAdmission::AcceptEvict(_) | DramAdmission::Stall
        )
    }
}

/// Schedules the return of a sink's ejection-slot credit to the output port
/// feeding it. Shared by normal delivery, DRAM rejection, and the stall
/// lane's deferred release, so the credit semantics cannot drift apart.
fn release_sink_credit(
    events: &mut EventQueue,
    config: &SimConfig,
    sink_feeders: &[Option<(usize, usize, usize)>],
    now: Cycle,
    sink: usize,
    slot: VcId,
) {
    if let Some((router, out_port, target_idx)) = sink_feeders[sink] {
        events.schedule(
            now + config.credit_delay,
            Event::CreditToRouter {
                router: router as u32,
                out_port: out_port as u16,
                target_idx: target_idx as u16,
                vc: slot,
                reserved_vc: false,
            },
        );
    }
}

/// Starts bank service of `request` on `bank_idx` of controller `mc_node`:
/// charges the page-policy service latency against the bank timeline, records
/// the service, and schedules the completion event. Under a priority-aware
/// scheduler it additionally advances the flow's rate-scaled virtual clock
/// and performs the deferred delivery bookkeeping (the request is recorded
/// delivered and its ACK dispatched now, not at controller admission).
/// Shared by every scheduler flavour so the bank-timeline semantics cannot
/// drift between them.
// taqos-lint: hot
#[allow(clippy::too_many_arguments)]
fn start_dram_service(
    mc: &mut crate::closed_loop::McState,
    bank_idx: usize,
    request: DramRequest,
    dram: &crate::closed_loop::DramConfig,
    weights: &[u64],
    now: Cycle,
    mc_node: usize,
    stats: &mut NetStats,
    events: &mut EventQueue,
    config: &SimConfig,
    flow_to_source: &[usize],
    last_progress: &mut Cycle,
    trace: &mut TraceHook,
) {
    // Entering bank service is forward progress for the watchdog: a run
    // bottlenecked on DRAM can legitimately go many cycles between fabric
    // deliveries.
    *last_progress = now;
    let row = dram.row_of(request.line);
    let bank = &mut mc.banks[bank_idx];
    let (hit, latency) = dram.service_outcome(bank.open_row, row);
    bank.busy_until = now + latency;
    bank.open_row = dram.row_after_service(row);
    bank.in_service = Some(request);
    stats.record_dram_service(request.flow, hit, request.arrived, now, latency);
    trace.emit(|| TraceEvent::DramService {
        cycle: now,
        flow: u64::from(request.flow.0),
        mc: mc_node as u64,
        bank: bank_idx as u64,
        latency,
        row_hit: hit,
    });
    if dram.scheduler.is_priority_aware() {
        let weight = weights.get(request.flow.index()).copied().unwrap_or(1);
        mc.charge(request.flow, latency, weight);
        // Deferred delivery: the request now counts as delivered, and its
        // still-live packet is acknowledged back to its source.
        stats.record_delivery(
            request.flow,
            request.len_flits,
            request.hops,
            request.birth,
            now,
        );
        trace.emit(|| TraceEvent::Deliver {
            cycle: now,
            flow: u64::from(request.flow.0),
            packet: request.packet.0,
            birth: request.birth,
        });
        events.schedule(
            now + config.ack_latency(request.hops),
            Event::Ack {
                source: flow_to_source[request.flow.index()] as u32,
                packet: request.packet,
            },
        );
    }
    events.schedule(
        now + latency,
        Event::DramComplete {
            mc: mc_node as u32,
            bank: bank_idx as u16,
        },
    );
}

/// Returns `qos.priority(flow)`, memoised in the router's priority cache
/// (valid within the router's current priority epoch).
fn cached_priority(router: &mut RouterState, qos: &dyn RouterQos, flow: FlowId) -> u64 {
    let epoch = router.priority_epoch;
    // taqos-lint: allow(panic-index) -- the cache is sized to num_flows at construction and flow ids are validated against it
    let memo = &mut router.priority_cache[flow.index()];
    if memo.epoch == epoch {
        memo.value
    } else {
        let value = qos.priority(flow);
        *memo = crate::router::PriorityMemo { value, epoch };
        value
    }
}

/// Sets router `ri`'s bit in a phase activity mask (see
/// [`Network::routing_work`] for the eager-set / lazy-clear discipline).
#[inline]
fn mark_router(mask: &mut [u64], ri: usize) {
    // taqos-lint: allow(panic-index) -- masks are sized to ceil(routers/64) words and ri is a live router index
    mask[ri >> 6] |= 1 << (ri & 63);
}

/// Clears router `ri`'s bit in a phase activity mask.
#[inline]
fn unmark_router(mask: &mut [u64], ri: usize) {
    // taqos-lint: allow(panic-index) -- masks are sized to ceil(routers/64) words and ri is a live router index
    mask[ri >> 6] &= !(1 << (ri & 63));
}

/// Collects the set-bit router indices of an activity mask into `out`
/// (ascending, the order the unmasked scans visit routers in).
#[inline]
fn scan_routers(mask: &[u64], out: &mut Vec<u32>) {
    out.clear();
    for (block, &word) in mask.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            out.push(((block as u32) << 6) | bits.trailing_zeros());
            bits &= bits - 1;
        }
    }
}

/// A fully instantiated, steppable network simulation.
pub struct Network {
    spec: NetworkSpec,
    config: SimConfig,
    policy: Box<dyn QosPolicy>,
    routers: Vec<RouterState>,
    sources: Vec<SourceState>,
    sinks: Vec<SinkState>,
    qos: Vec<Box<dyn RouterQos>>,
    packets: PacketStore,
    events: EventQueue,
    stats: NetStats,
    /// Feeder output port of each sink (router, out_port, target_idx).
    sink_feeders: Vec<Option<(usize, usize, usize)>>,
    /// Source index serving each flow.
    flow_to_source: Vec<usize>,
    frame_len: Option<Cycle>,
    now: Cycle,
    /// Reusable buffer for events drained each cycle.
    event_scratch: Vec<Event>,
    /// Per-phase router activity masks (optimized engine; one bit per
    /// router, 64-router blocks). A bit is set *eagerly* wherever a router
    /// gains the corresponding work — a head flit arrives (`routing_work`,
    /// `alloc_work`) or a transfer is granted (`launch_work`) — and cleared
    /// *lazily* by the owning phase when it visits a router and finds it
    /// idle. Stale-set bits therefore self-heal and no decrement site needs
    /// mask bookkeeping, while each phase scans a handful of contiguous
    /// words instead of touching every `RouterState` to read its activity
    /// counters.
    routing_work: Vec<u64>,
    /// Routers with occupied input VCs (allocation candidates); see
    /// [`Self::routing_work`].
    alloc_work: Vec<u64>,
    /// Routers holding granted transfers; see [`Self::routing_work`].
    launch_work: Vec<u64>,
    /// Reusable buffer of candidate router indices for the masked scans.
    router_scan: Vec<u32>,
    /// Reusable buffer for preemption victim candidates.
    probe_scratch: Vec<(PacketId, FlowId, bool)>,
    /// Reusable buffer for candidates annotated with cached priorities.
    probe_prioritized_scratch: Vec<(PacketId, FlowId, bool, u64)>,
    /// Whether the policy uses ideal per-flow queuing: downstream VC ids may
    /// then exceed the spec-provisioned count and ports grow on demand.
    unlimited: bool,
    /// Closed-loop request/reply state, if the workload is MLP-limited.
    closed_loop: Option<ClosedLoopState>,
    /// Injected-fault state, if a [`FaultPlan`] was installed.
    fault: Option<FaultState>,
    /// Last cycle at which the network made observable forward progress
    /// (a packet was generated, acknowledged, or entered DRAM service).
    /// Consulted by the livelock watchdog ([`Self::check_progress`]).
    last_progress: Cycle,
    /// Per-frame time-series sampler, present when
    /// [`crate::config::TelemetryConfig::frame_len`] is non-zero.
    sampler: Option<FrameSampler>,
    /// Flit-level trace hook; [`TraceHook::Off`] unless a sink was installed
    /// with [`Self::with_trace_sink`].
    trace: TraceHook,
    /// Active-fault count at the last trace emission, for fault
    /// onset/clearance transition events.
    traced_fault_active: u64,
    /// Scheduled mid-run rate reprogrammings as `(cycle, rates)`, sorted by
    /// cycle (stable: the last-scheduled of equal cycles wins). Each applies
    /// at the first frame rollover at or after its cycle, never mid-frame —
    /// see [`Self::schedule_reprogram`].
    pending_reprograms: Vec<(Cycle, Vec<f64>)>,
    /// Index of the next unapplied entry of [`Self::pending_reprograms`].
    next_reprogram: usize,
}

impl Network {
    /// Builds a simulation from a network specification, a QOS policy, and
    /// one traffic generator per source (in source order).
    ///
    /// # Errors
    ///
    /// Returns an error if the specification fails validation or the number
    /// of generators does not match the number of sources.
    pub fn new(
        spec: NetworkSpec,
        policy: Box<dyn QosPolicy>,
        generators: Vec<Box<dyn PacketGenerator>>,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        spec.validate()?;
        if generators.len() != spec.sources.len() {
            return Err(SimError::Spec(crate::error::SpecError::new(format!(
                "{} generators supplied for {} sources",
                generators.len(),
                spec.sources.len()
            ))));
        }
        let mut flows: Vec<usize> = spec.sources.iter().map(|s| s.flow.index()).collect();
        flows.sort_unstable();
        if flows != (0..spec.sources.len()).collect::<Vec<_>>() {
            return Err(SimError::Spec(crate::error::SpecError::new(
                "source flow identifiers must be dense (0..num_sources)",
            )));
        }

        let unlimited = policy.unlimited_buffering();
        let mut routers: Vec<RouterState> =
            spec.routers.iter().map(RouterState::from_spec).collect();
        for router in &mut routers {
            router.init_priority_cache(spec.num_flows());
        }

        // Fill per-target credit state and feeder back-pointers.
        let mut sink_feeders: Vec<Option<(usize, usize, usize)>> = vec![None; spec.sinks.len()];
        for (ri, rspec) in spec.routers.iter().enumerate() {
            for (oi, ospec) in rspec.outputs.iter().enumerate() {
                for (ti, target) in ospec.targets.iter().enumerate() {
                    let credit = match target.endpoint {
                        TargetEndpoint::Router { router, in_port } => {
                            let dspec = &spec.routers[router].inputs[in_port.0];
                            TargetCreditState::new(
                                dspec.vcs.count - dspec.vcs.reserved,
                                dspec.vcs.reserved,
                                unlimited,
                            )
                        }
                        TargetEndpoint::Sink { sink } => {
                            sink_feeders[sink] = Some((ri, oi, ti));
                            TargetCreditState::new(spec.sinks[sink].slots, 0, false)
                        }
                    };
                    routers[ri].outputs[oi].targets.push(credit);
                }
            }
        }
        // Feeders of router input ports.
        for (ri, rspec) in spec.routers.iter().enumerate() {
            for (oi, ospec) in rspec.outputs.iter().enumerate() {
                for (ti, target) in ospec.targets.iter().enumerate() {
                    if let TargetEndpoint::Router { router, in_port } = target.endpoint {
                        let slot = &mut routers[router].inputs[in_port.0].feeder;
                        assert!(
                            slot.is_none(),
                            "input port {} of router {router} has two feeders",
                            in_port.0
                        );
                        *slot = Some(Feeder::RouterOutput {
                            router: ri,
                            out_port: oi,
                            target_idx: ti,
                        });
                    }
                }
            }
        }
        for (si, sspec) in spec.sources.iter().enumerate() {
            let slot = &mut routers[sspec.router].inputs[sspec.in_port.0].feeder;
            assert!(
                slot.is_none(),
                "injection port of source {} already has a feeder",
                sspec.name
            );
            *slot = Some(Feeder::Source { source: si });
        }

        let qos: Vec<Box<dyn RouterQos>> = spec
            .routers
            .iter()
            .map(|r| policy.router_qos(r, spec.num_flows()))
            .collect();

        let mut flow_to_source = vec![0usize; spec.sources.len()];
        let sources: Vec<SourceState> = spec
            .sources
            .iter()
            .zip(generators)
            .enumerate()
            .map(|(si, (sspec, generator))| {
                flow_to_source[sspec.flow.index()] = si;
                let vcs = spec.routers[sspec.router].inputs[sspec.in_port.0].vcs.count;
                SourceState::new(sspec, generator, vcs)
            })
            .collect();

        let sinks: Vec<SinkState> = spec.sinks.iter().map(SinkState::from_spec).collect();
        let mut stats = NetStats::new(spec.num_flows());
        stats.histograms_enabled = config.telemetry.histograms;
        let sampler = config.telemetry.frames_enabled().then(|| {
            let num_links: usize = spec.routers.iter().map(|r| r.outputs.len()).sum();
            FrameSampler::new(
                config.telemetry.frame_len,
                config.telemetry.max_frames,
                spec.num_flows(),
                spec.routers.len(),
                num_links,
            )
        });
        let frame_len = policy.frame_len();
        let num_router_blocks = spec.routers.len().div_ceil(64);

        Ok(Network {
            spec,
            config,
            policy,
            routers,
            sources,
            sinks,
            qos,
            packets: PacketStore::for_engine(config.engine),
            events: EventQueue::for_engine(config.engine),
            stats,
            sink_feeders,
            flow_to_source,
            frame_len,
            now: 0,
            event_scratch: Vec::new(),
            routing_work: vec![0; num_router_blocks],
            alloc_work: vec![0; num_router_blocks],
            launch_work: vec![0; num_router_blocks],
            router_scan: Vec::new(),
            probe_scratch: Vec::new(),
            probe_prioritized_scratch: Vec::new(),
            unlimited,
            closed_loop: None,
            fault: None,
            last_progress: 0,
            sampler,
            trace: TraceHook::Off,
            traced_fault_active: 0,
            pending_reprograms: Vec::new(),
            next_reprogram: 0,
        })
    }

    /// Installs a closed-loop request/reply workload: each requester flow
    /// issues MLP-window-limited requests to its memory controller, and every
    /// delivered request is answered with a reply injected at the
    /// controller's source (see [`crate::closed_loop`]). Both requester and
    /// controller sources must carry idle (exhausted) generators: a
    /// requester flow never polls its generator (a producing one would be
    /// silently ignored yet block quiescence forever), and a controller's
    /// reply port only injects while its source is otherwise idle (a
    /// producing generator would starve the replies and livelock the loop).
    ///
    /// # Errors
    ///
    /// Returns an error if the spec does not match this network (see
    /// [`ClosedLoopSpec::validate`]) or a requester's or controller's source
    /// has a non-exhausted generator.
    pub fn with_closed_loop(mut self, spec: ClosedLoopSpec) -> Result<Self, SimError> {
        spec.validate(&self.spec)?;
        let state = ClosedLoopState::new(&spec, &self.spec);
        for (flow, requester) in spec.requesters.iter().enumerate() {
            let Some(requester) = requester else { continue };
            let requester_source = &self.sources[self.flow_to_source[flow]];
            if !requester_source.generator.exhausted() {
                return Err(SimError::Spec(crate::error::SpecError::new(format!(
                    "requester flow {flow} needs an idle (exhausted) generator at its source \
                     {}: the closed loop replaces generation for that flow",
                    requester_source.name
                ))));
            }
            let Some(mc_source) = state.node_reply_source[requester.mc.index()] else {
                return Err(SimError::Spec(crate::error::SpecError::new(format!(
                    "memory controller node {} has no source to inject replies",
                    requester.mc
                ))));
            };
            let mc_source = &self.sources[mc_source];
            if !mc_source.generator.exhausted() {
                return Err(SimError::Spec(crate::error::SpecError::new(format!(
                    "memory controller node {} needs an idle (exhausted) generator at its \
                     source {} to inject replies",
                    requester.mc, mc_source.name
                ))));
            }
        }
        self.closed_loop = Some(state);
        Ok(self)
    }

    /// Installs a fault-injection plan: seeded, deterministic link, router,
    /// controller and flit-corruption failures applied while the network
    /// steps (see [`crate::fault`]). Dropped packets are NACKed back to
    /// their source over the ACK network and retransmitted until the plan's
    /// retransmit budget is exhausted, after which they are abandoned. An
    /// empty plan leaves behaviour bit-identical to a fault-free run.
    ///
    /// # Errors
    ///
    /// Returns an error if the plan fails validation against this network's
    /// spec (out-of-range routers or ports, malformed fault windows).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Result<Self, SimError> {
        plan.validate_against(&self.spec)?;
        self.fault = Some(FaultState::new(plan, &self.spec));
        Ok(self)
    }

    /// Schedules a mid-run reprogramming of the per-flow rate programme (one
    /// positive relative rate per flow, as a hypervisor would write into the
    /// QOS flow tables). The new rates take effect at the **first frame
    /// rollover at or after** cycle `at` — never mid-frame — so the change
    /// coincides with the bandwidth-counter and virtual-clock flush and the
    /// routers' priority-stability contract is preserved. Scheduling two
    /// programmes for the same rollover applies them in call order (the
    /// last one wins).
    ///
    /// # Errors
    ///
    /// Returns an error if the policy has no frames (nothing to anchor the
    /// change to), the rate count does not match the flow count, or any rate
    /// is non-finite or not positive.
    pub fn schedule_reprogram(&mut self, at: Cycle, rates: Vec<f64>) -> Result<(), SimError> {
        if self.frame_len.is_none_or(|f| f == 0) {
            return Err(SimError::Spec(crate::error::SpecError::new(
                "rate reprogramming needs a frame-based policy to anchor the change to",
            )));
        }
        if rates.len() != self.spec.num_flows() {
            return Err(SimError::Spec(crate::error::SpecError::new(format!(
                "{} rates supplied for {} flows",
                rates.len(),
                self.spec.num_flows()
            ))));
        }
        if rates.iter().any(|r| !r.is_finite() || *r <= 0.0) {
            return Err(SimError::Spec(crate::error::SpecError::new(
                "rates must be finite and positive",
            )));
        }
        // taqos-lint: allow(panic-index) -- next_reprogram only advances past applied entries, so it never exceeds len
        let idx = self.pending_reprograms[self.next_reprogram..]
            .partition_point(|&(cycle, _)| cycle <= at)
            + self.next_reprogram;
        self.pending_reprograms.insert(idx, (at, rates));
        Ok(())
    }

    /// Applies every scheduled rate reprogramming due by now to the policy,
    /// each router's QOS state and the closed loop's DRAM weights. Called
    /// only from a frame rollover, which immediately flushes the bandwidth
    /// counters and bumps every router's priority epoch — so the new
    /// programme starts from a clean frame in both engines.
    fn apply_due_reprograms(&mut self) {
        let Network {
            pending_reprograms,
            next_reprogram,
            policy,
            qos,
            closed_loop,
            now,
            ..
        } = self;
        while let Some((at, rates)) = pending_reprograms.get(*next_reprogram) {
            if *at > *now {
                break;
            }
            policy.reprogram_rates(rates);
            for q in qos.iter_mut() {
                q.reprogram_rates(rates);
            }
            if let Some(cl) = closed_loop {
                cl.reprogram_weights(rates);
            }
            *next_reprogram += 1;
        }
    }

    /// Installs a flit-level trace sink: injections, grants, preemptions,
    /// NACKs, deliveries, DRAM services, timeouts/retries and fault
    /// transitions are streamed to it as [`TraceEvent`]s, in cycle order.
    /// Without a sink the trace hook is a single predictable branch per
    /// instrumentation point and no event is ever constructed.
    ///
    /// Call [`Self::take_trace_sink`] (and [`TraceSink::finish`]) to recover
    /// the sink before dropping the network; [`Self::into_stats`] otherwise
    /// finishes it implicitly, discarding any I/O error.
    #[must_use]
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.trace = TraceHook::On(sink);
        self
    }

    /// Removes and returns the installed trace sink, if any, leaving tracing
    /// off. The caller should invoke [`TraceSink::finish`] on it.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The network specification this simulation was built from.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable access to statistics (used by drivers to set the measurement
    /// window).
    pub fn stats_mut(&mut self) -> &mut NetStats {
        &mut self.stats
    }

    /// Whether every source is drained, no packet is live anywhere in the
    /// network, and every closed-loop requester has spent its budget — i.e. a
    /// closed (fixed) workload has completed.
    pub fn is_quiescent(&self) -> bool {
        self.sources.iter().all(|s| s.is_drained())
            && self.packets.is_empty()
            && self.closed_loop.as_ref().is_none_or(|cl| cl.is_complete())
    }

    /// Number of packets currently live (queued, in flight, or awaiting ACK).
    pub fn live_packets(&self) -> usize {
        self.packets.len()
    }

    /// Checks the forward-progress watchdog: if more than
    /// [`SimConfig::progress_watchdog`] cycles have elapsed since the last
    /// packet generation, acknowledgement, or DRAM service start, the
    /// network is considered wedged (deadlocked or livelocked — e.g. a NACK
    /// storm against dead hardware) and a structured error is returned. A
    /// watchdog of 0 disables the check.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoForwardProgress`] when the watchdog expires.
    pub fn check_progress(&self) -> Result<(), SimError> {
        let horizon = self.config.progress_watchdog;
        let stalled_for = self.now.saturating_sub(self.last_progress);
        if horizon > 0 && stalled_for > horizon {
            return Err(SimError::NoForwardProgress {
                cycles: self.now,
                stalled_for,
                live_packets: self.live_packets(),
            });
        }
        Ok(())
    }

    /// Total flits delivered to sinks so far, per the sinks' own counters.
    ///
    /// Under a priority-aware DRAM scheduler
    /// ([`crate::closed_loop::DramScheduler::is_priority_aware`]) admitted
    /// requests bypass these counters: their delivery is deferred to the
    /// start of bank service and recorded in [`Self::stats`]
    /// (`NetStats::delivered_flits`) only, so the statistics — not this
    /// sink-level sum — are the authoritative delivery count for such runs.
    pub fn delivered_flits(&self) -> u64 {
        self.sinks.iter().map(|s| s.delivered_flits).sum()
    }

    /// Consumes the network and returns the final statistics, with per-source
    /// counters folded in.
    pub fn into_stats(mut self) -> NetStats {
        for source in &self.sources {
            let fs = &mut self.stats.flows[source.flow.index()];
            fs.generated_packets = source.generated_packets;
            fs.generated_flits = source.generated_flits;
            fs.injected_packets = source.injected_packets;
            fs.retransmissions = source.retransmitted_packets;
        }
        if let Some(cl) = &self.closed_loop {
            for (flow, requester) in cl.requesters.iter().enumerate() {
                let Some(requester) = requester else { continue };
                self.stats.flows[flow].requests_in_flight = requester.outstanding as u64;
            }
        }
        self.stats.generated_packets = self.sources.iter().map(|s| s.generated_packets).sum();
        self.stats.cycles = self.now;
        if let Some(sampler) = self.sampler.take() {
            self.stats.frames = Some(sampler.into_series());
        }
        // A sink the caller did not reclaim is finished here so buffered
        // formats (Chrome trace) still produce a valid file; the I/O result
        // is unobservable at this point by construction.
        if let Some(mut sink) = self.trace.take() {
            let _ = sink.finish();
        }
        self.stats
    }

    /// Advances the simulation by one cycle.
    // taqos-lint: hot
    pub fn step(&mut self) {
        self.now += 1;
        if let Some(fault) = &mut self.fault {
            fault.refresh(self.now);
            if self.trace.is_on() {
                let active = fault.active_count(self.now);
                if active != self.traced_fault_active {
                    self.traced_fault_active = active;
                    let cycle = self.now;
                    self.trace
                        .emit(|| TraceEvent::FaultTransition { cycle, active });
                }
            }
        }
        self.phase_frame_rollover();
        self.phase_events();
        self.phase_sources();
        self.phase_routing();
        self.phase_allocation();
        self.phase_launch();
        if self.sampler.is_some() {
            self.sample_frame();
        }
    }

    /// Closes a sampling frame if one is due this cycle: snapshots the
    /// cumulative per-flow counters, instantaneous router occupancy and
    /// cumulative per-link launched-flit counts; the sampler converts the
    /// cumulative figures to per-frame deltas in place. Reads existing
    /// counters only — no simulation state is touched, so sampling cannot
    /// perturb the run.
    // taqos-lint: hot
    fn sample_frame(&mut self) {
        let Network {
            sampler,
            stats,
            sources,
            flow_to_source,
            routers,
            now,
            ..
        } = self;
        let Some(sampler) = sampler.as_mut() else {
            return;
        };
        if !sampler.due(*now) {
            return;
        }
        sampler.sample_frame(*now, |snap| {
            for (f, flow) in snap.flows.iter_mut().enumerate() {
                let fs = &stats.flows[f];
                flow.injected_packets = sources[flow_to_source[f]].injected_packets;
                flow.delivered_flits = fs.delivered_flits;
                flow.latency_sum = fs.latency_sum;
                flow.latency_samples = fs.latency_samples;
                flow.round_trips = fs.round_trips;
                flow.rt_latency_sum = fs.rt_latency_sum;
                flow.rt_samples = fs.rt_samples;
            }
            for (occ, router) in snap.router_occupancy.iter_mut().zip(routers.iter()) {
                *occ = router.active_vcs as u64;
            }
            let mut link = 0;
            for router in routers.iter() {
                for out in &router.outputs {
                    snap.link_flits[link] = out.flits_launched_total;
                    link += 1;
                }
            }
        });
    }

    /// Advances the simulation by `cycles` cycles.
    pub fn run_for(&mut self, cycles: Cycle) {
        for _ in 0..cycles {
            self.step();
        }
    }

    // taqos-lint: hot
    fn phase_frame_rollover(&mut self) {
        if let Some(frame) = self.frame_len {
            if frame > 0 && self.now.is_multiple_of(frame) {
                // Rate reprogrammings land exactly here, before the flush,
                // so a new programme always starts from a clean frame.
                if self.next_reprogram < self.pending_reprograms.len() {
                    self.apply_due_reprograms();
                }
                for qos in &mut self.qos {
                    qos.on_frame_rollover();
                }
                for router in &mut self.routers {
                    router.priority_epoch += 1;
                    router.mark_all_dirty();
                }
                for source in &mut self.sources {
                    source.on_frame_rollover();
                }
                // The controllers' rate-scaled virtual clocks observe the
                // same frame boundaries as the fabric's bandwidth counters.
                if let Some(cl) = &mut self.closed_loop {
                    cl.flush_vclocks();
                }
            }
        }
    }

    // taqos-lint: hot
    fn phase_events(&mut self) {
        if self.config.engine.is_reference() {
            // Seed behaviour: a fresh vector of due events every cycle.
            let due = self.events.drain_due(self.now);
            for event in due {
                self.apply_event(event);
            }
            return;
        }
        // The drained events are collected into a reusable buffer so the
        // steady-state event phase performs no heap allocation.
        let mut scratch = std::mem::take(&mut self.event_scratch);
        scratch.clear();
        self.events.drain_due_into(self.now, &mut scratch);
        for event in scratch.drain(..) {
            self.apply_event(event);
        }
        self.event_scratch = scratch;
    }

    fn apply_event(&mut self, event: Event) {
        match event {
            Event::HeadToRouter {
                router,
                in_port,
                vc,
                len,
                packet,
            } => {
                let router = router as usize;
                let router_state = &mut self.routers[router];
                let port = &mut router_state.inputs[in_port as usize];
                if port.vcs.len() <= vc.index() {
                    // VC counts are fully provisioned from the spec at
                    // construction; only ideal per-flow queuing manufactures
                    // VC ids beyond that count.
                    assert!(
                        self.unlimited,
                        "flit addressed VC {} beyond the {} provisioned at router {router} port {in_port}",
                        vc.index(),
                        port.vcs.len(),
                    );
                    port.vcs.resize_with(vc.index() + 1, || VcState::new(false));
                }
                port.vcs[vc.index()].accept_head(packet, len, self.now);
                port.occupied += 1;
                port.unrouted += 1;
                router_state.active_vcs += 1;
                router_state.unrouted_vcs += 1;
                mark_router(&mut self.routing_work, router);
                mark_router(&mut self.alloc_work, router);
                self.stats.energy.buffer_writes += 1;
            }
            Event::BodyToRouter {
                router,
                in_port,
                vc,
                packet,
            } => {
                // Body flits always follow their head into an already-claimed
                // (and, under unlimited buffering, already-grown) VC.
                let port = &mut self.routers[router as usize].inputs[in_port as usize];
                debug_assert!(vc.index() < port.vcs.len());
                port.vcs[vc.index()].accept_body(packet);
                self.stats.energy.buffer_writes += 1;
            }
            Event::FlitToSink {
                sink,
                slot,
                is_head,
                is_tail,
                packet,
            } => {
                let sink = sink as usize;
                if is_head {
                    self.sinks[sink].accept_head(slot, packet);
                } else {
                    self.sinks[sink].accept_body(slot, packet);
                }
                if is_tail {
                    self.complete_delivery(sink, slot);
                }
            }
            Event::CreditToRouter {
                router,
                out_port,
                target_idx,
                vc,
                reserved_vc,
            } => {
                let router_state = &mut self.routers[router as usize];
                router_state.outputs[out_port as usize].targets[target_idx as usize]
                    .refund(vc, reserved_vc);
                router_state.mark_output_dirty(out_port as usize);
            }
            Event::CreditToSource { source, vc } => {
                self.sources[source as usize].free_vcs.push(vc);
            }
            Event::Ack { source, packet } => {
                // A packet left the system (delivered, or abandoned by the
                // fault layer): that is forward progress for the watchdog.
                self.last_progress = self.now;
                self.sources[source as usize].acknowledge(packet);
                self.packets.remove(packet);
            }
            Event::Nack { source, packet } => {
                if let Some(pkt) = self.packets.get_mut(packet) {
                    pkt.retransmissions += 1;
                    let (cycle, flow) = (self.now, pkt.flow);
                    self.trace.emit(|| TraceEvent::Nack {
                        cycle,
                        flow: u64::from(flow.0),
                        packet: packet.0,
                    });
                }
                self.sources[source as usize].retransmit(packet);
            }
            Event::PreemptionProbe {
                router,
                in_port,
                contender,
            } => {
                self.handle_preemption_probe(router as usize, in_port as usize, contender);
            }
            Event::DramComplete { mc, bank } => {
                self.handle_dram_complete(mc as usize, bank as usize);
            }
        }
    }

    // taqos-lint: hot
    fn complete_delivery(&mut self, sink: usize, slot: VcId) {
        // Peek at the occupant first: DRAM admission may reject the packet,
        // and a rejected request must not touch the sink's delivery
        // counters (`SinkState::discard` vs `SinkState::complete` below).
        let packet_id = self.sinks[sink]
            .occupant(slot)
            // taqos-lint: allow(panic-path) -- delivery events fire only for occupied sink slots
            .expect("completing an empty sink slot");
        // Only scalar fields of the packet feed the stats recorder and the
        // closed-loop hook; copying them out avoids cloning the whole packet
        // on every delivery.
        let (
            flow,
            len_flits,
            hops,
            birth,
            class,
            src,
            request_birth,
            origin_source,
            dram_line,
            req_seq,
        ) = {
            let packet = self
                .packets
                .get(packet_id)
                // taqos-lint: allow(panic-path) -- sink slots only ever hold live packet ids
                .expect("delivered packet must be live");
            (
                packet.flow,
                packet.len_flits,
                packet.column_hops(),
                packet.birth,
                packet.class,
                packet.src,
                packet.request_birth,
                packet.origin_source,
                packet.dram_line,
                packet.req_seq,
            )
        };
        // A controller outage bounces request-class packets at the dark
        // node: the delivery is not recorded and the packet is NACKed back
        // to its source (or abandoned once the fault retransmit budget is
        // spent), exactly like a DRAM-queue rejection.
        if class == PacketClass::Request
            && self
                .fault
                .as_ref()
                .is_some_and(|f| f.mc_dark(self.sinks[sink].node))
        {
            self.sinks[sink].discard(slot);
            self.stats.fault.mc_outage_rejections += 1;
            release_sink_credit(
                &mut self.events,
                &self.config,
                &self.sink_feeders,
                self.now,
                sink,
                slot,
            );
            self.fault_bounce(packet_id, flow, origin_source, hops);
            return;
        }
        // DRAM admission control: a closed-loop request arriving at a
        // controller whose bounded queue is full is either rejected (NACKed
        // back to its source for a retry over the fabric — it does *not*
        // count as delivered) or parked in the stall lane (it counts as
        // delivered but withholds its ejection-slot credit, backpressuring
        // the fabric).
        let admission = self.dram_admission(sink, flow, class);
        if admission == DramAdmission::Reject {
            self.sinks[sink].discard(slot);
            self.stats.record_dram_rejection(flow);
            // The flits did occupy the sink slot: free its credit as usual.
            release_sink_credit(
                &mut self.events,
                &self.config,
                &self.sink_feeders,
                self.now,
                sink,
                slot,
            );
            // Closed-loop requests are always injected by their own flow's
            // source; the NACK sends it back for retransmission.
            self.events.schedule(
                self.now + self.config.ack_latency(hops),
                Event::Nack {
                    source: self.flow_to_source[flow.index()] as u32,
                    packet: packet_id,
                },
            );
            return;
        }
        // Priority-aware schedulers defer a request's delivery (and its ACK)
        // to the start of its bank service: the packet stays live at its
        // source so a later eviction can NACK it for a fabric retry. Under
        // FCFS everything is recorded at admission, exactly as before the
        // scheduler abstraction existed.
        let deferred = admission.enters_pipeline()
            && self
                .closed_loop
                .as_ref()
                .and_then(|cl| cl.dram)
                .is_some_and(|d| d.scheduler.is_priority_aware());
        if deferred {
            self.sinks[sink].discard(slot);
        } else {
            let completed = self.sinks[sink].complete(slot);
            debug_assert_eq!(completed, packet_id);
            self.stats
                .record_delivery(flow, len_flits, hops, birth, self.now);
            let cycle = self.now;
            self.trace.emit(|| TraceEvent::Deliver {
                cycle,
                flow: u64::from(flow.0),
                packet: packet_id.0,
                birth,
            });
        }
        if self.closed_loop.is_some() {
            self.on_closed_loop_delivery(
                sink,
                slot,
                flow,
                class,
                src,
                birth,
                request_birth,
                dram_line,
                admission,
                packet_id,
                hops,
                len_flits,
                req_seq,
            );
        }
        // Free the sink slot credit at the feeding ejection port — unless a
        // DRAM stall lane is withholding it until the controller queue has
        // room (released in `dram_pump`).
        if admission != DramAdmission::Stall {
            release_sink_credit(
                &mut self.events,
                &self.config,
                &self.sink_feeders,
                self.now,
                sink,
                slot,
            );
        }
        if deferred {
            // The ACK (and the delivery statistics) fire when the request
            // enters bank service, from `dram_pump`.
            return;
        }
        // Acknowledge delivery over the ACK network, to the source that
        // physically injected the packet (for closed-loop replies that is the
        // memory controller's source, not the requester flow's).
        let source = origin_source
            .map(|s| s as usize)
            .unwrap_or_else(|| self.flow_to_source[flow.index()]);
        self.events.schedule(
            self.now + self.config.ack_latency(hops),
            Event::Ack {
                source: source as u32,
                packet: packet_id,
            },
        );
    }

    /// Sends a fault-dropped (or outage-bounced) packet back to its source:
    /// a NACK schedules a fabric retransmission, unless the packet has
    /// already burned through the fault plan's retransmit budget, in which
    /// case it is abandoned — acknowledged and removed without ever counting
    /// as delivered. Abandonment guarantees NACK loops against permanently
    /// dead hardware terminate instead of livelocking.
    // taqos-lint: hot
    fn fault_bounce(
        &mut self,
        packet_id: PacketId,
        flow: FlowId,
        origin_source: Option<u32>,
        hops: u32,
    ) {
        let budget = self
            .fault
            .as_ref()
            // taqos-lint: allow(panic-path) -- fault_bounce is only reached from fault-plan drop handling
            .expect("fault_bounce requires an installed fault plan")
            .retransmit_budget();
        let drops = {
            let packet = self
                .packets
                .get_mut(packet_id)
                // taqos-lint: allow(panic-path) -- NACKed packets stay live until acked or abandoned
                .expect("bounced packet must be live");
            packet.fault_drops += 1;
            packet.fault_drops
        };
        let source = origin_source
            .map(|s| s as usize)
            .unwrap_or_else(|| self.flow_to_source[flow.index()]) as u32;
        let due = self.now + self.config.ack_latency(hops);
        if drops > budget {
            self.stats.fault.abandoned_packets += 1;
            self.events.schedule(
                due,
                Event::Ack {
                    source,
                    packet: packet_id,
                },
            );
        } else {
            self.events.schedule(
                due,
                Event::Nack {
                    source,
                    packet: packet_id,
                },
            );
        }
    }

    /// Decides what a DRAM-backed controller does with a delivered packet:
    /// [`DramAdmission::None`] for everything that is not a closed-loop
    /// request at a DRAM-modelled controller (including the whole non-DRAM
    /// configuration), otherwise accept/stall/reject per queue occupancy and
    /// the configured backpressure.
    // taqos-lint: hot
    fn dram_admission(&self, sink: usize, flow: FlowId, class: PacketClass) -> DramAdmission {
        if class != PacketClass::Request {
            return DramAdmission::None;
        }
        let Some(cl) = &self.closed_loop else {
            return DramAdmission::None;
        };
        let Some(dram) = &cl.dram else {
            return DramAdmission::None;
        };
        let sink_node = self.sinks[sink].node;
        // Only requests of a requester flow arriving at that flow's own
        // controller enter the DRAM pipeline; everything else is ordinary
        // traffic.
        match &cl.requesters[flow.index()] {
            Some(r) if r.spec.mc == sink_node => {}
            _ => return DramAdmission::None,
        }
        let mc = cl.mc_states[sink_node.index()]
            .as_ref()
            // taqos-lint: allow(panic-path) -- admission is gated on the requester match, which implies DRAM state
            .expect("requester controllers have DRAM state");
        if mc.queue.len() < dram.queue_depth {
            DramAdmission::Accept
        } else {
            match dram.backpressure {
                DramBackpressure::Nack => {
                    // Priority admission: a full queue bounces the
                    // *lowest-priority* request, not reflexively the newest —
                    // but only when the arrival strictly outranks it.
                    match dram
                        .scheduler
                        .is_priority_aware()
                        .then(|| mc.eviction_victim(flow))
                        .flatten()
                    {
                        Some(victim_idx) => DramAdmission::AcceptEvict(victim_idx),
                        None => DramAdmission::Reject,
                    }
                }
                // Stalling withholds a credit instead of producing NACK
                // traffic; there is nothing to evict, under any scheduler.
                DramBackpressure::Stall => DramAdmission::Stall,
            }
        }
    }

    /// Closed-loop bookkeeping of one delivered packet: a requester's request
    /// arriving at its memory controller either queues a reply on the
    /// controller's injection port (instant controllers) or enters the
    /// controller's DRAM pipeline (the reply is released when its bank
    /// completes); a reply arriving back at the requester credits the MLP
    /// window and records the round trip.
    #[allow(clippy::too_many_arguments)]
    // taqos-lint: hot
    fn on_closed_loop_delivery(
        &mut self,
        sink: usize,
        slot: VcId,
        flow: FlowId,
        class: PacketClass,
        src: NodeId,
        birth: Cycle,
        request_birth: Option<Cycle>,
        dram_line: Option<u64>,
        admission: DramAdmission,
        packet_id: PacketId,
        hops: u32,
        len_flits: u8,
        req_seq: Option<u64>,
    ) {
        match class {
            PacketClass::Request => {
                let sink_node = self.sinks[sink].node;
                // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
                let cl = self.closed_loop.as_ref().expect("closed loop active");
                let reply_len = match &cl.requesters[flow.index()] {
                    // Only requests of a requester flow arriving at that
                    // flow's controller are answered; everything else is
                    // ordinary traffic.
                    Some(r) if r.spec.mc == sink_node => r.spec.reply_len,
                    _ => return,
                };
                // A retried request carries the logical birth of its
                // original send: round trips are anchored there, so retry
                // latency shows up in the measured round-trip time. Fresh
                // requests carry `None` and anchor at their packet birth.
                let birth = request_birth.unwrap_or(birth);
                if admission != DramAdmission::None {
                    // DRAM-backed controller: the request enters the bounded
                    // queue (or the credit-withholding stall lane) and its
                    // reply is released by `handle_dram_complete` when the
                    // bank finishes.
                    let request = DramRequest {
                        flow,
                        requester: src,
                        birth,
                        reply_len,
                        // taqos-lint: allow(panic-path) -- requester-generated requests always carry a DRAM line
                        line: dram_line.expect("closed-loop DRAM requests carry a line"),
                        arrived: self.now,
                        packet: packet_id,
                        hops,
                        len_flits,
                        req_seq,
                    };
                    let mc = self
                        .closed_loop
                        .as_mut()
                        // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
                        .expect("closed loop active")
                        .mc_states[sink_node.index()]
                    .as_mut()
                    // taqos-lint: allow(panic-path) -- admission is gated on the requester match, which implies DRAM state
                    .expect("requester controllers have DRAM state");
                    match admission {
                        DramAdmission::Accept => {
                            mc.queue.push_back(request);
                            let occupancy = mc.queue.len();
                            self.stats.record_dram_occupancy(occupancy);
                        }
                        DramAdmission::AcceptEvict(victim_idx) => {
                            // Bounce the lowest-priority queued request in
                            // favour of the higher-priority arrival: its
                            // still-live packet is NACKed back to its source
                            // and retried over the fabric.
                            let victim =
                                // taqos-lint: allow(panic-path) -- eviction_victim returns an index into the live queue
                                mc.queue.remove(victim_idx).expect("victim index in bounds");
                            mc.queue.push_back(request);
                            let occupancy = mc.queue.len();
                            self.stats.record_dram_occupancy(occupancy);
                            self.stats.record_dram_eviction(victim.flow);
                            self.events.schedule(
                                self.now + self.config.ack_latency(victim.hops),
                                Event::Nack {
                                    source: self.flow_to_source[victim.flow.index()] as u32,
                                    packet: victim.packet,
                                },
                            );
                        }
                        DramAdmission::Stall => {
                            mc.stalled.push_back(StalledRequest {
                                request,
                                sink,
                                slot,
                            });
                            self.stats.record_dram_stall();
                        }
                        DramAdmission::Reject | DramAdmission::None => {
                            // taqos-lint: allow(panic-path) -- Reject and None verdicts return before delivery bookkeeping
                            unreachable!("rejections return before delivery")
                        }
                    }
                    self.dram_pump(sink_node.index());
                    return;
                }
                let reply_source = self
                    .closed_loop
                    .as_ref()
                    // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
                    .expect("closed loop active")
                    .node_reply_source[sink_node.index()]
                // taqos-lint: allow(panic-path) -- ClosedLoopSpec::validate pins a reply source to every controller
                .expect("validated: controller node has a source");
                self.release_reply(
                    sink_node,
                    reply_source,
                    flow,
                    src,
                    reply_len,
                    birth,
                    req_seq,
                );
            }
            PacketClass::Reply => {
                // Closed-loop replies are marked by the request birth they
                // carry; plain reply-class traffic passes through untouched.
                let Some(request_birth) = request_birth else {
                    return;
                };
                // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
                let cl = self.closed_loop.as_mut().expect("closed loop active");
                let retry_on = cl.retry.is_some();
                let Some(requester) = cl.requesters[flow.index()].as_mut() else {
                    return;
                };
                // Under a retry policy the reply must match a sequence
                // number the requester still considers live: either waiting
                // for this reply, or already timed out and parked for a
                // retry (the original raced the deadline and won). A reply
                // matching neither is stale — a duplicate whose request was
                // already completed by an earlier copy — and is discarded
                // without touching the MLP window.
                let seq = match req_seq {
                    Some(seq) if retry_on => seq,
                    _ => {
                        debug_assert!(requester.outstanding > 0, "reply without a request");
                        requester.outstanding -= 1;
                        self.stats.record_round_trip(flow, request_birth, self.now);
                        return;
                    }
                };
                if let Some(pos) = requester.in_flight.iter().position(|r| r.seq == seq) {
                    let entry = requester.in_flight.remove(pos);
                    requester.outstanding -= 1;
                    self.stats.record_round_trip(flow, entry.birth, self.now);
                } else if let Some(pos) = requester.deferred.iter().position(|d| d.seq == seq) {
                    let entry = requester
                        .deferred
                        .remove(pos)
                        // taqos-lint: allow(panic-path) -- position was just found by the scan above
                        .expect("position is in bounds");
                    requester.outstanding -= 1;
                    self.stats.record_round_trip(flow, entry.birth, self.now);
                } else {
                    self.stats.record_stale_reply(flow);
                }
            }
        }
    }

    /// Creates a reply packet on `flow` from controller `mc_node` back to
    /// `requester` and queues it at the controller's reply port. The reply
    /// travels on the requester's flow (QOS priority and per-flow
    /// accounting) but is injected and retransmitted by the controller's
    /// source; it carries the request's birth so the round trip can be
    /// measured at delivery.
    // taqos-lint: hot
    #[allow(clippy::too_many_arguments)]
    fn release_reply(
        &mut self,
        mc_node: NodeId,
        reply_source: usize,
        flow: FlowId,
        requester: NodeId,
        reply_len: u8,
        request_birth: Cycle,
        req_seq: Option<u64>,
    ) {
        let now = self.now;
        let reply_id = self.packets.insert_with(|id| {
            let mut reply = Packet::new(
                id,
                flow,
                mc_node,
                requester,
                reply_len,
                PacketClass::Reply,
                now,
            );
            reply.request_birth = Some(request_birth);
            reply.origin_source = Some(reply_source as u32);
            reply.req_seq = req_seq;
            reply
        });
        let source = &mut self.sources[reply_source];
        source.generated_packets += 1;
        source.generated_flits += u64::from(reply_len);
        self.closed_loop
            .as_mut()
            // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
            .expect("closed loop active")
            .pending_replies[reply_source]
            .push_back((reply_id, flow));
    }

    /// A DRAM bank completed: release the reply of the serviced request and
    /// let the controller pull waiting work onto its freed bank.
    // taqos-lint: hot
    fn handle_dram_complete(&mut self, mc_node: usize, bank: usize) {
        // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
        let cl = self.closed_loop.as_mut().expect("closed loop active");
        let mc = cl.mc_states[mc_node]
            .as_mut()
            // taqos-lint: allow(panic-path) -- completions fire only at controllers that started service
            .expect("completion at a controller without DRAM state");
        debug_assert_eq!(
            mc.banks[bank].busy_until, self.now,
            "bank completion fired at the wrong cycle"
        );
        let request = mc.banks[bank]
            .in_service
            .take()
            // taqos-lint: allow(panic-path) -- a completion event is scheduled exactly when service starts
            .expect("completion for an idle bank");
        let reply_source =
            // taqos-lint: allow(panic-path) -- ClosedLoopSpec::validate pins a reply source to every controller
            cl.node_reply_source[mc_node].expect("validated: controller node has a source");
        self.release_reply(
            NodeId(mc_node as u16),
            reply_source,
            request.flow,
            request.requester,
            request.reply_len,
            request.birth,
            request.req_seq,
        );
        self.dram_pump(mc_node);
    }

    /// Drives a controller's DRAM pipeline to a fixed point: every idle bank
    /// pulls its next request per the configured [`DramScheduler`] (arrival
    /// order for FCFS and priority admission, row-hit-first with the
    /// priority-weighted age cap for FR-FCFS), and stall-lane arrivals are
    /// admitted (releasing their withheld ejection-slot credits) while the
    /// bounded queue has room. Called after every arrival and every bank
    /// completion; deterministic and identical on both engines.
    // taqos-lint: hot
    fn dram_pump(&mut self, mc_node: usize) {
        let now = self.now;
        let Network {
            closed_loop,
            stats,
            events,
            sink_feeders,
            config,
            flow_to_source,
            last_progress,
            trace,
            ..
        } = self;
        // taqos-lint: allow(panic-path) -- request/reply bookkeeping is only reached under an active closed loop
        let cl = closed_loop.as_mut().expect("closed loop active");
        // taqos-lint: allow(panic-path) -- pump callers checked admission, which requires a DRAM model
        let dram = cl.dram.expect("DRAM pump requires a DRAM model");
        let weights = &cl.weights;
        let total_weight = cl.total_weight;
        let mc = cl.mc_states[mc_node]
            .as_mut()
            // taqos-lint: allow(panic-path) -- pump targets controllers that accepted a request, so state exists
            .expect("pump at a controller without DRAM state");
        loop {
            let mut progressed = false;
            match dram.scheduler {
                // Arrival-order bank scheduling: start every startable
                // request, scanning the queue front to back (a younger
                // request may bypass to a different, idle bank).
                DramScheduler::Fcfs | DramScheduler::PriorityAdmission => {
                    let mut i = 0;
                    while i < mc.queue.len() {
                        let bank_idx = dram.bank_of(mc.queue[i].line);
                        if mc.banks[bank_idx].is_idle() {
                            // taqos-lint: allow(panic-path) -- i < queue.len() is the loop condition
                            let request = mc.queue.remove(i).expect("index checked in bounds");
                            start_dram_service(
                                mc,
                                bank_idx,
                                request,
                                &dram,
                                weights,
                                now,
                                mc_node,
                                stats,
                                events,
                                config,
                                flow_to_source,
                                last_progress,
                                trace,
                            );
                            progressed = true;
                        } else {
                            i += 1;
                        }
                    }
                }
                // Row-hit-first: each idle bank picks per the FR-FCFS rules
                // (oldest overdue request, else best open-row hit, else best
                // priority).
                DramScheduler::FrFcfs => {
                    for bank_idx in 0..mc.banks.len() {
                        if !mc.banks[bank_idx].is_idle() {
                            continue;
                        }
                        if let Some(idx) =
                            mc.frfcfs_pick(&dram, bank_idx, now, weights, total_weight)
                        {
                            // taqos-lint: allow(panic-path) -- frfcfs_pick returns an index into the live queue
                            let request = mc.queue.remove(idx).expect("pick index in bounds");
                            start_dram_service(
                                mc,
                                bank_idx,
                                request,
                                &dram,
                                weights,
                                now,
                                mc_node,
                                stats,
                                events,
                                config,
                                flow_to_source,
                                last_progress,
                                trace,
                            );
                            progressed = true;
                        }
                    }
                }
            }
            // Admit stalled arrivals while the queue has room, releasing
            // their withheld sink-slot credits.
            while mc.queue.len() < dram.queue_depth {
                let Some(stalled) = mc.stalled.pop_front() else {
                    break;
                };
                mc.queue.push_back(stalled.request);
                stats.record_dram_occupancy(mc.queue.len());
                release_sink_credit(
                    events,
                    config,
                    sink_feeders,
                    now,
                    stalled.sink,
                    stalled.slot,
                );
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    // taqos-lint: hot
    fn phase_sources(&mut self) {
        let now = self.now;
        // Split-borrow the fields once so the per-source loop indexes each
        // source a single time instead of re-indexing `self.sources[si]` at
        // every access.
        let Network {
            sources,
            routers,
            packets,
            stats,
            policy,
            qos,
            closed_loop,
            last_progress,
            trace,
            routing_work,
            alloc_work,
            ..
        } = self;
        for (si, source) in sources.iter_mut().enumerate() {
            // 1. Traffic generation — one generator call per cycle. An
            // exhausted generator returns `None` without consuming entropy
            // (the `PacketGenerator` contract), and a source that also has
            // nothing queued or streaming has no per-cycle work at all
            // (outstanding-window packets only need event handling).
            // Closed-loop requester flows issue from their MLP window instead
            // of polling a generator: one request whenever the window has
            // room and the budget allows. Under a DRAM model the request also
            // carries the next cache line of the flow's private stream.
            let mut dram_line = None;
            let mut req_seq = None;
            let mut logical_birth = None;
            let generated = match closed_loop.as_mut().map(|cl| {
                (
                    cl.dram.is_some(),
                    cl.retry,
                    cl.requesters[source.flow.index()].as_mut(),
                )
            }) {
                Some((dram_enabled, retry, Some(requester))) => {
                    let flow = source.flow;
                    // Dynamic traffic: apply any phase change due this cycle
                    // to the effective MLP window before the issue decision.
                    requester.advance_phases(now);
                    // Deadline scan: every in-flight request whose reply has
                    // not arrived within the policy deadline either moves to
                    // the backoff lane for a retry or — once its attempt
                    // budget is spent — is abandoned, releasing its MLP
                    // window slot so the flow keeps making progress past
                    // genuinely lost requests.
                    if let Some(policy) = retry {
                        let mut i = 0;
                        while i < requester.in_flight.len() {
                            let entry = requester.in_flight[i];
                            if now < entry.sent + policy.deadline {
                                i += 1;
                                continue;
                            }
                            requester.in_flight.remove(i);
                            if entry.attempts >= policy.max_attempts {
                                requester.outstanding -= 1;
                                stats.record_request_abandoned(flow);
                                // Giving up on a lost request is forward
                                // progress: the window slot is usable again.
                                *last_progress = now;
                            } else {
                                stats.record_request_timeout(flow);
                                trace.emit(|| TraceEvent::Timeout {
                                    cycle: now,
                                    flow: u64::from(flow.0),
                                    seq: entry.seq,
                                });
                                requester.deferred.push_back(DeferredRetry {
                                    ready: now
                                        + policy.backoff_delay(flow, entry.seq, entry.attempts),
                                    seq: entry.seq,
                                    birth: entry.birth,
                                    attempts: entry.attempts,
                                    line: entry.line,
                                });
                            }
                        }
                    }
                    // A retry whose backoff has elapsed re-issues before any
                    // fresh request: it already owns a window slot and its
                    // requester has waited longest for the data.
                    if let Some(deferred) = retry.and_then(|_| requester.pop_ready_retry(now)) {
                        requester.in_flight.push(InFlightRequest {
                            seq: deferred.seq,
                            birth: deferred.birth,
                            sent: now,
                            attempts: deferred.attempts + 1,
                            line: deferred.line,
                        });
                        stats.record_request_retry(flow);
                        trace.emit(|| TraceEvent::Retry {
                            cycle: now,
                            flow: u64::from(flow.0),
                            seq: deferred.seq,
                        });
                        dram_line = deferred.line;
                        req_seq = Some(deferred.seq);
                        logical_birth = Some(deferred.birth);
                        Some(GeneratedPacket {
                            dst: requester.spec.mc,
                            len_flits: requester.spec.request_len,
                            class: PacketClass::Request,
                        })
                    } else if requester.can_issue() {
                        if dram_enabled {
                            dram_line = Some(requester_line(flow, requester.issued));
                        }
                        if retry.is_some() {
                            let seq = requester.issued;
                            requester.in_flight.push(InFlightRequest {
                                seq,
                                birth: now,
                                sent: now,
                                attempts: 1,
                                line: dram_line,
                            });
                            req_seq = Some(seq);
                        }
                        requester.outstanding += 1;
                        requester.issued += 1;
                        stats.record_request_issued(flow);
                        Some(GeneratedPacket {
                            dst: requester.spec.mc,
                            len_flits: requester.spec.request_len,
                            class: PacketClass::Request,
                        })
                    } else {
                        None
                    }
                }
                _ => source.generator.generate(now),
            };
            if let Some(gen) = generated {
                // Generating a packet is forward progress for the watchdog.
                *last_progress = now;
                // `origin_source` stays `None` here: a packet generated at
                // its own flow's source routes ACK/NACK via `flow_to_source`;
                // only controller-injected replies carry an explicit origin.
                let (flow, node) = (source.flow, source.node);
                let id = packets.insert_with(|id| {
                    let mut packet =
                        Packet::new(id, flow, node, gen.dst, gen.len_flits, gen.class, now);
                    packet.dram_line = dram_line;
                    packet.req_seq = req_seq;
                    packet.request_birth = logical_birth;
                    packet
                });
                source.enqueue_generated(id, gen.len_flits);
            } else if closed_loop
                .as_ref()
                .is_some_and(|cl| cl.has_pending_replies(si))
            {
                // Controller reply port: when the source queue is free, pull
                // the pending reply of the highest-priority flow into it —
                // the controller is a QOS arbitration point, so the reply
                // order follows flow priority, not head-of-line arrival.
                // NACKed replies re-queued at the front drain first.
                if source.active.is_none()
                    && source.queue.is_empty()
                    && source.window.len() < source.window_limit
                    && !source.free_vcs.is_empty()
                {
                    let router_qos = &qos[source.router];
                    let picked = closed_loop
                        .as_mut()
                        // taqos-lint: allow(panic-path) -- pending_replies is only populated under a closed loop
                        .expect("pending replies imply closed loop")
                        .pop_best_reply(si, |flow| router_qos.priority(flow));
                    if let Some((reply, _)) = picked {
                        source.queue.push_back(reply);
                    }
                }
            } else if source.is_idle_this_cycle() {
                continue;
            }

            // 2. Start a new injection if possible.
            if source.can_start_injection() {
                // taqos-lint: allow(panic-path) -- can_start_injection checked the queue is non-empty
                let packet_id = source.queue.pop_front().expect("queue checked non-empty");
                // taqos-lint: allow(panic-path) -- can_start_injection checked a free VC is available
                let vc = source.free_vcs.pop().expect("credit checked available");
                let quota = policy.reserved_quota(source.flow);
                let len = {
                    let packet = packets
                        .get_mut(packet_id)
                        // taqos-lint: allow(panic-path) -- queued ids are removed before their packets are freed
                        .expect("queued packet must be live");
                    if packet.injected_at.is_none() {
                        packet.injected_at = Some(now);
                        source.injected_packets += 1;
                        let (flow, node) = (packet.flow, source.node);
                        trace.emit(|| TraceEvent::Inject {
                            cycle: now,
                            flow: u64::from(flow.0),
                            packet: packet_id.0,
                            node: u64::from(node.0),
                        });
                    }
                    packet.len_flits
                };
                let reserved = match quota {
                    Some(q) if source.reserved_used_this_frame + u64::from(len) <= q => {
                        source.reserved_used_this_frame += u64::from(len);
                        true
                    }
                    _ => false,
                };
                packets.set_reserved(packet_id, reserved);
                source.window.insert(packet_id);
                source.active = Some(InjectionTransfer {
                    packet: packet_id,
                    len,
                    vc,
                    flits_sent: 0,
                });
            }

            // 3. Stream one flit of the active injection into the router.
            if let Some(transfer) = &mut source.active {
                let router = &mut routers[source.router];
                let port = &mut router.inputs[source.in_port.0];
                let vc_state = &mut port.vcs[transfer.vc.index()];
                if transfer.flits_sent == 0 {
                    vc_state.accept_head(transfer.packet, transfer.len, now);
                    port.occupied += 1;
                    port.unrouted += 1;
                    router.active_vcs += 1;
                    router.unrouted_vcs += 1;
                    mark_router(routing_work, source.router);
                    mark_router(alloc_work, source.router);
                } else {
                    vc_state.accept_body(transfer.packet);
                }
                transfer.flits_sent += 1;
                stats.energy.buffer_writes += 1;
                if transfer.flits_sent >= transfer.len {
                    source.active = None;
                }
            }
        }
    }

    // taqos-lint: hot
    fn phase_routing(&mut self) {
        let skip_idle = !self.config.engine.is_reference();
        // Active-set fast path: route computation only concerns heads that
        // arrived since the last routing pass, and routers holding one are
        // tracked in the contiguous `routing_work` mask — scanning it costs
        // a few word loads instead of touching every `RouterState`.
        let mut scan = std::mem::take(&mut self.router_scan);
        if skip_idle {
            scan_routers(&self.routing_work, &mut scan);
        } else {
            scan.clear();
            scan.extend(0..self.routers.len() as u32);
        }
        for &ri in &scan {
            let ri = ri as usize;
            let router = &mut self.routers[ri];
            if skip_idle && router.unrouted_vcs == 0 {
                // Stale-set bit (the head was routed or preempted since):
                // reconcile the mask and move on.
                unmark_router(&mut self.routing_work, ri);
                continue;
            }
            let rspec = &self.spec.routers[ri];
            for (pi, port) in router.inputs.iter_mut().enumerate() {
                if skip_idle && port.unrouted == 0 {
                    continue;
                }
                let pspec = &rspec.inputs[pi];
                for (vi, vc) in port.vcs.iter_mut().enumerate() {
                    if let (Some(packet_id), None) = (vc.packet(), vc.route()) {
                        if vc.flits_arrived == 0 {
                            continue;
                        }
                        let packet = self
                            .packets
                            .hot(packet_id)
                            // taqos-lint: allow(panic-path) -- VC occupancy and packet lifetime are updated together
                            .expect("buffered packet must be live");
                        let out = if !skip_idle {
                            compute_route(rspec, pspec, packet.dst, &mut router.route_rr_cursor)
                        } else if let Some(fixed) = pspec.fixed_route {
                            fixed
                        } else {
                            // Dense LUT path: same candidates and selection
                            // logic as `compute_route`, minus the tree walk.
                            let candidates = router
                                .route_lut
                                .get(packet.dst.index())
                                .map(Vec::as_slice)
                                .unwrap_or(&[]);
                            assert!(
                                !candidates.is_empty(),
                                "router {} has no route for destination {}",
                                rspec.node,
                                packet.dst
                            );
                            crate::router::select_route(
                                rspec,
                                pspec,
                                packet.dst,
                                candidates,
                                &mut router.route_rr_cursor,
                            )
                        };
                        vc.set_route(out);
                        port.unrouted -= 1;
                        router.unrouted_vcs -= 1;
                        if skip_idle {
                            // Optimized engine: enter the packet into the
                            // persistent arbitration request list of its
                            // output, ordered by (in_port, vc) — the same
                            // order the reference engine's scan produces.
                            let target_idx = resolve_target_idx(&rspec.outputs[out.0], packet.dst);
                            let request = crate::router::ArbRequest {
                                in_port: pi as u16,
                                vc: vi as u16,
                                packet: packet_id,
                                flow: packet.flow,
                                len: packet.len_flits,
                                reserved: packet.reserved,
                                target_idx: target_idx as u16,
                                passthrough: pspec.passthrough,
                                priority: 0,
                                has_credit: false,
                            };
                            let bucket = &mut router.alloc_buckets[out.0];
                            let pos = bucket
                                .binary_search_by_key(&(pi as u16, vi as u16), |r| {
                                    (r.in_port, r.vc)
                                })
                                .expect_err("VC already has a pending request");
                            bucket.insert(pos, request);
                            if let Some(mask) = router.alloc_dirty.as_mut() {
                                *mask |= 1 << out.0;
                            }
                        }
                    }
                }
            }
            // taqos-lint: allow(panic-index) -- scan holds indices of routers whose mask bit was set, all in bounds
            if skip_idle && self.routers[ri].unrouted_vcs == 0 {
                unmark_router(&mut self.routing_work, ri);
            }
        }
        self.router_scan = scan;
    }

    // taqos-lint: hot
    fn phase_allocation(&mut self) {
        let preemption = self.policy.preemption_enabled();
        let reference = self.config.engine.is_reference();
        // Active-set fast path: allocation requests come from buffered
        // packets only, and routers holding one are tracked in the
        // contiguous `alloc_work` mask.
        let mut scan = std::mem::take(&mut self.router_scan);
        if reference {
            scan.clear();
            scan.extend(0..self.routers.len() as u32);
        } else {
            scan_routers(&self.alloc_work, &mut scan);
        }
        for &ri in &scan {
            let ri = ri as usize;
            if !reference && self.routers[ri].active_vcs == 0 {
                // Stale-set bit (the last occupant drained since).
                unmark_router(&mut self.alloc_work, ri);
                continue;
            }
            let rspec = &self.spec.routers[ri];
            let qos = &mut self.qos[ri];
            let num_outputs = self.routers[ri].outputs.len();

            for oi in 0..num_outputs {
                let router = &mut self.routers[ri];
                if !reference && router.alloc_buckets[oi].is_empty() {
                    continue;
                }
                if !router.outputs[oi].can_grant(self.config.grant_queue_depth) {
                    continue;
                }
                if !reference {
                    // Clean output: nothing feeding this decision changed
                    // since the last full evaluation, which ended blocked
                    // (a winner would have marked it dirty again). Replay
                    // the cached outcome — schedule the same probe, skip the
                    // arbitration entirely.
                    let clean = router.alloc_dirty.is_some_and(|mask| mask & (1 << oi) == 0);
                    if clean {
                        if preemption {
                            if let Some(probe) = router.cached_probe[oi] {
                                self.events.schedule(self.now + 1, probe);
                            }
                        }
                        continue;
                    }
                }
                let mut requests = if reference {
                    // Reference gather: fresh vector and full port/VC rescan
                    // per output, reproducing the original engine's cost.
                    // taqos-lint: allow(hot-alloc) -- seed-faithful reference gather allocates by design
                    let mut requests = Vec::new();
                    for (pi, port) in router.inputs.iter().enumerate() {
                        let pspec = &rspec.inputs[pi];
                        for (vi, vc) in port.vcs.iter().enumerate() {
                            if !vc.wants_allocation()
                                || vc.route() != Some(crate::ids::OutPortId(oi))
                            {
                                continue;
                            }
                            // taqos-lint: allow(panic-path) -- wants_allocation implies an occupant
                            let packet_id = vc.packet().expect("allocating VC holds a packet");
                            let packet = self
                                .packets
                                .get(packet_id)
                                // taqos-lint: allow(panic-path) -- VC occupancy and packet lifetime are updated together
                                .expect("buffered packet must be live");
                            let target_idx = resolve_target_idx(&rspec.outputs[oi], packet.dst);
                            let has_credit =
                                router.outputs[oi].targets[target_idx].has_credit(packet.reserved);
                            requests.push(crate::router::ArbRequest {
                                in_port: pi as u16,
                                vc: vi as u16,
                                packet: packet_id,
                                flow: packet.flow,
                                len: packet.len_flits,
                                reserved: packet.reserved,
                                target_idx: target_idx as u16,
                                passthrough: pspec.passthrough,
                                priority: qos.priority(packet.flow),
                                has_credit,
                            });
                        }
                    }
                    requests
                } else {
                    std::mem::take(&mut router.alloc_buckets[oi])
                };
                if requests.is_empty() {
                    if !reference {
                        self.routers[ri].alloc_buckets[oi] = requests;
                    }
                    continue;
                }
                // Pass-through merge points (DPS intermediate hops) arbitrate
                // with the same rate-scaled priorities as everywhere else: in
                // hardware the priority travels with the packet (PVC's
                // priority reuse), so no flow-state query is needed there and
                // none is charged to the energy counters.
                let n = requests.len();
                let rr = router.outputs[oi].rr_cursor;
                // Round-robin distance from the cursor. Equivalent to
                // `(idx + n - rr % n) % n`, with the per-request modulo
                // replaced by a conditional subtract (idx and rr_mod are both
                // below n, so the sum is below 2n).
                let rr_mod = rr % n.max(1);
                // Winner and probe-contender selection. The reference engine
                // evaluated priorities and credit during its gather; the
                // optimized engine resolves both here in one read-only pass
                // over the persistent request list (same values, same program
                // point — grants at earlier outputs are already visible).
                // `blocked_idx` mirrors `filter(!has_credit).min_by_key
                // (priority)`: the first blocked request of minimal priority.
                let mut winner_idx: Option<usize> = None;
                let mut winner_key = (u64::MAX, usize::MAX);
                let mut blocked_idx: Option<usize> = None;
                let mut blocked_priority = u64::MAX;
                for (idx, req) in requests.iter().enumerate() {
                    let (priority, has_credit) = if reference {
                        (req.priority, req.has_credit)
                    } else {
                        // Priorities only move when this router forwards a
                        // packet or a frame rolls over; within an epoch the
                        // memoised value is exact, saving the virtual call
                        // and f64 division for flows that re-arbitrate.
                        let priority = cached_priority(router, &**qos, req.flow);
                        let has_credit = router.outputs[oi].targets[req.target_idx as usize]
                            .has_credit(req.reserved);
                        (priority, has_credit)
                    };
                    if has_credit {
                        let distance = idx + n - rr_mod;
                        let distance = if distance >= n {
                            distance - n
                        } else {
                            distance
                        };
                        if (priority, distance) < winner_key {
                            winner_key = (priority, distance);
                            winner_idx = Some(idx);
                        }
                    } else if blocked_idx.is_none() || priority < blocked_priority {
                        blocked_idx = Some(idx);
                        blocked_priority = priority;
                    }
                }

                if let Some(widx) = winner_idx {
                    let req = &requests[widx];
                    let out_state = &mut router.outputs[oi];
                    let (to_vc, to_vc_reserved) = out_state.targets[req.target_idx as usize]
                        .claim(req.reserved)
                        // taqos-lint: allow(panic-path) -- has_credit was checked when the request was filed
                        .expect("credit was checked");
                    let ospec = &rspec.outputs[oi];
                    let target = &ospec.targets[req.target_idx as usize];
                    let router_latency = if req.passthrough {
                        1
                    } else {
                        rspec.va_latency + rspec.xt_latency
                    };
                    // Per-packet flit-maturation template: every non-head
                    // flit of this transfer schedules a copy of this event.
                    let body_event = match target.endpoint {
                        TargetEndpoint::Router { router, in_port } => Event::BodyToRouter {
                            router: router as u32,
                            in_port: in_port.0 as u16,
                            vc: to_vc,
                            packet: req.packet,
                        },
                        TargetEndpoint::Sink { sink } => Event::FlitToSink {
                            sink: sink as u32,
                            slot: to_vc,
                            is_head: false,
                            is_tail: false,
                            packet: req.packet,
                        },
                    };
                    out_state.granted.push(Transfer {
                        packet: req.packet,
                        flow: req.flow,
                        len: req.len,
                        from_port: InPortId(req.in_port as usize),
                        from_vc: VcId(req.vc),
                        target_idx: req.target_idx as usize,
                        endpoint: target.endpoint,
                        to_vc,
                        to_vc_reserved,
                        flits_launched: 0,
                        launch_start: self.now + Cycle::from(router_latency),
                        wire_delay: target.wire_delay,
                        passthrough: req.passthrough,
                        body_event,
                    });
                    out_state.rr_cursor = widx + 1;
                    let (grant_cycle, grant_flow, grant_packet) = (self.now, req.flow, req.packet);
                    self.trace.emit(|| TraceEvent::Grant {
                        cycle: grant_cycle,
                        flow: u64::from(grant_flow.0),
                        packet: grant_packet.0,
                        router: ri as u64,
                        out_port: oi as u64,
                    });
                    if let Some(mask) = router.granted_mask.as_mut() {
                        *mask |= 1 << oi;
                    }
                    mark_router(&mut self.launch_work, ri);
                    // taqos-lint: allow(panic-index) -- request coordinates were recorded from an enumeration of these vectors
                    router.inputs[req.in_port as usize].vcs[req.vc as usize].set_granted();
                    // Flow-state bookkeeping. Pass-through hops skip the
                    // energy cost of the query/update but still account the
                    // bandwidth so preemption decisions stay meaningful.
                    qos.on_packet_forwarded(req.flow, u32::from(req.len));
                    if !reference {
                        // A grant moves only this flow's priority; refresh
                        // its cache entry and leave the rest valid.
                        // taqos-lint: allow(panic-index) -- the cache is sized to num_flows at construction and flow ids are validated against it
                        router.priority_cache[req.flow.index()] = crate::router::PriorityMemo {
                            value: qos.priority(req.flow),
                            epoch: router.priority_epoch,
                        };
                    }
                    if !req.passthrough {
                        self.stats.energy.flow_table_queries += 1;
                        self.stats.energy.flow_table_updates += 1;
                    }
                    if !reference {
                        // The packet holds a grant now; retire its entry from
                        // the persistent request list. A grant invalidates
                        // exactly this output (its credits were claimed, its
                        // grant queue grew, its cursor moved) plus every
                        // output holding a request of the forwarded flow —
                        // `on_packet_forwarded` moves only that flow's
                        // priority (the `RouterQos` contract), so the other
                        // outputs' blocked verdicts still stand.
                        // taqos-lint: allow(panic-index) -- widx is the winner's position found by the scan over this list
                        let granted_flow = requests[widx].flow;
                        requests.remove(widx);
                        if router.alloc_dirty.is_some() {
                            let mut dirty = 1u64 << oi;
                            for (oj, bucket) in router.alloc_buckets.iter().enumerate() {
                                if bucket.iter().any(|r| r.flow == granted_flow) {
                                    dirty |= 1 << oj;
                                }
                            }
                            if let Some(mask) = router.alloc_dirty.as_mut() {
                                *mask |= dirty;
                            }
                        }
                    }
                } else {
                    // Everyone is blocked on buffer space: probe the most
                    // deserving blocked request's target for a lower-priority
                    // victim (priority inversion resolution).
                    let mut probe = None;
                    if preemption {
                        if let Some(bidx) = blocked_idx {
                            let req = &requests[bidx];
                            let ospec = &rspec.outputs[oi];
                            let target = &ospec.targets[req.target_idx as usize];
                            if let TargetEndpoint::Router { router, in_port } = target.endpoint {
                                probe = Some(Event::PreemptionProbe {
                                    router: router as u32,
                                    in_port: in_port.0 as u16,
                                    contender: req.flow,
                                });
                            }
                        }
                        if let Some(probe) = probe {
                            self.events.schedule(self.now + 1, probe);
                        }
                    }
                    if !reference {
                        // Blocked with no state change pending: mark the
                        // output clean and remember the probe to replay.
                        if let Some(mask) = router.alloc_dirty.as_mut() {
                            *mask &= !(1 << oi);
                        }
                        router.cached_probe[oi] = probe;
                    }
                }
                if !reference {
                    self.routers[ri].alloc_buckets[oi] = requests;
                }
            }
        }
        self.router_scan = scan;
    }

    // taqos-lint: hot
    fn phase_launch(&mut self) {
        let now = self.now;
        let skip_idle = !self.config.engine.is_reference();
        // Whether any fault plan is live this cycle, hoisted so the
        // per-launch fault interception block is only entered when one is.
        let faults_on = self.fault.as_ref().is_some_and(|f| f.any_active());
        // Active-set fast path: only routers holding granted transfers can
        // launch, and those are tracked in the contiguous `launch_work`
        // mask (within a router, `granted_mask` then walks the granted
        // outputs, falling back to the occupied-VC check for >64-output
        // routers).
        let mut scan = std::mem::take(&mut self.router_scan);
        if skip_idle {
            scan_routers(&self.launch_work, &mut scan);
        } else {
            scan.clear();
            scan.extend(0..self.routers.len() as u32);
        }
        for &ri in &scan {
            let ri = ri as usize;
            if skip_idle {
                // taqos-lint: allow(panic-index) -- scan holds indices of routers whose mask bit was set, all in bounds
                let idle = match self.routers[ri].granted_mask {
                    Some(0) => true,
                    Some(_) => false,
                    // taqos-lint: allow(panic-index) -- same bound as the granted_mask read above
                    None => self.routers[ri].active_vcs == 0,
                };
                if idle {
                    // Stale-set bit (the last transfer completed since).
                    unmark_router(&mut self.launch_work, ri);
                    continue;
                }
            }
            // taqos-lint: allow(panic-index) -- scan holds indices of routers whose mask bit was set, all in bounds
            let router = &mut self.routers[ri];
            // Crossbar input groups already used this cycle (bitmask).
            let mut xbar_used: u64 = 0;
            // Walk either the set bits of the granted mask (ascending, the
            // same order as the linear scan) or every output.
            let mask = if skip_idle { router.granted_mask } else { None };
            let mut mask_bits = mask.unwrap_or(0);
            let mut linear_oi = 0;
            loop {
                let oi = if mask.is_some() {
                    if mask_bits == 0 {
                        break;
                    }
                    let oi = mask_bits.trailing_zeros() as usize;
                    mask_bits &= mask_bits - 1;
                    oi
                } else {
                    if linear_oi >= router.outputs.len() {
                        break;
                    }
                    linear_oi += 1;
                    linear_oi - 1
                };
                let out_state = &mut router.outputs[oi];
                if out_state.granted.is_empty() || out_state.link_free_at > now {
                    continue;
                }
                let transfer = &out_state.granted[0];
                if transfer.launch_start > now {
                    continue;
                }
                let from_port = transfer.from_port.0;
                let from_vc = transfer.from_vc.index();
                let passthrough = transfer.passthrough;
                // taqos-lint: allow(panic-index) -- xbar_groups is built 1:1 with the router's input ports
                let group = router.xbar_groups[from_port];
                if !passthrough && (xbar_used >> group) & 1 == 1 {
                    continue;
                }
                let sendable = router.inputs[from_port].vcs[from_vc].sendable_flits();
                if sendable == 0 {
                    continue;
                }

                // Injected faults intercept whole packets at head launch: a
                // dead output link, a dead router at either end of it, or a
                // corrupted head flit kills the transfer before anything
                // reaches the wire. The drop has whole-packet (virtual
                // cut-through) granularity and fires only once every flit is
                // buffered at this router, so no body flit is ever in flight
                // towards a VC released here; a hard fault simply holds the
                // head until the packet is fully resident. The claimed
                // resources are released exactly as a completed transfer's
                // would be, and the packet is NACKed back to its source —
                // or abandoned once the fault retransmit budget is spent.
                if let Some(fault) = self.fault.as_ref().filter(|_| faults_on) {
                    let transfer = &out_state.granted[0];
                    if transfer.flits_launched == 0 {
                        let dest_router_dead = match transfer.endpoint {
                            TargetEndpoint::Router { router, .. } => fault.router_dead(router),
                            TargetEndpoint::Sink { .. } => false,
                        };
                        let hard =
                            fault.router_dead(ri) || dest_router_dead || fault.link_dead(ri, oi);
                        let resident =
                            router.inputs[from_port].vcs[from_vc].flits_arrived >= transfer.len;
                        if hard && !resident {
                            continue;
                        }
                        let corrupt = !hard
                            && resident
                            && fault.corrupts(now, ri, oi, transfer.flow.index() as u64);
                        if hard || corrupt {
                            if corrupt {
                                self.stats.fault.corruption_drops += 1;
                            } else if fault.router_dead(ri) || dest_router_dead {
                                self.stats.fault.router_drops += 1;
                            } else {
                                self.stats.fault.link_drops += 1;
                            }
                            let transfer = out_state.granted.remove(0);
                            // No flit will ever consume the downstream VC
                            // claimed at grant time: refund its credit here.
                            out_state.targets[transfer.target_idx]
                                .refund(transfer.to_vc, transfer.to_vc_reserved);
                            if out_state.granted.is_empty() {
                                if let Some(mask) = router.granted_mask.as_mut() {
                                    *mask &= !(1 << oi);
                                }
                            }
                            if let Some(mask) = router.alloc_dirty.as_mut() {
                                *mask |= 1 << oi;
                            }
                            let port = &mut router.inputs[from_port];
                            let vc_state = &mut port.vcs[from_vc];
                            let was_reserved_vc = vc_state.reserved_vc();
                            vc_state.release();
                            port.occupied -= 1;
                            router.active_vcs -= 1;
                            match router.inputs[from_port].feeder {
                                Some(Feeder::RouterOutput {
                                    router: fr,
                                    out_port: fo,
                                    target_idx: ft,
                                }) => {
                                    self.events.schedule(
                                        now + self.config.credit_delay,
                                        Event::CreditToRouter {
                                            router: fr as u32,
                                            out_port: fo as u16,
                                            target_idx: ft as u16,
                                            vc: VcId(from_vc as u16),
                                            reserved_vc: was_reserved_vc,
                                        },
                                    );
                                }
                                Some(Feeder::Source { source }) => {
                                    self.events.schedule(
                                        now + self.config.credit_delay,
                                        Event::CreditToSource {
                                            source: source as u32,
                                            vc: VcId(from_vc as u16),
                                        },
                                    );
                                }
                                None => {}
                            }
                            // Bounce the packet: NACK for a fabric
                            // retransmission, or — once the fault budget is
                            // burned — abandon it (acknowledge and remove
                            // without delivery) so NACK loops against dead
                            // hardware terminate.
                            let budget = fault.retransmit_budget();
                            let (pkt_flow, pkt_src, pkt_origin, drops) = {
                                let packet = self
                                    .packets
                                    .get_mut(transfer.packet)
                                    // taqos-lint: allow(panic-path) -- fault drops target in-flight packets only
                                    .expect("dropped packet must be live");
                                packet.fault_drops += 1;
                                (
                                    packet.flow,
                                    packet.src,
                                    packet.origin_source,
                                    packet.fault_drops,
                                )
                            };
                            let hops = pkt_src.column_distance(router.node);
                            let source = pkt_origin
                                .map(|s| s as usize)
                                .unwrap_or_else(|| self.flow_to_source[pkt_flow.index()])
                                as u32;
                            let due = now + self.config.ack_latency(hops);
                            if drops > budget {
                                self.stats.fault.abandoned_packets += 1;
                                self.events.schedule(
                                    due,
                                    Event::Ack {
                                        source,
                                        packet: transfer.packet,
                                    },
                                );
                            } else {
                                self.events.schedule(
                                    due,
                                    Event::Nack {
                                        source,
                                        packet: transfer.packet,
                                    },
                                );
                            }
                            continue;
                        }
                    }
                }

                // Launch one flit.
                let transfer = &mut out_state.granted[0];
                let flit_idx = transfer.flits_launched;
                let is_head = flit_idx == 0;
                let is_tail = flit_idx + 1 == transfer.len;
                transfer.flits_launched += 1;
                out_state.link_free_at = now + 1;
                out_state.flits_launched_total += 1;
                router.inputs[from_port].vcs[from_vc].flits_sent += 1;

                self.stats.energy.buffer_reads += 1;
                self.stats.energy.link_flit_hops += u64::from(transfer.wire_delay);
                if !passthrough {
                    xbar_used |= 1 << group;
                    self.stats.energy.xbar_flits += 1;
                }

                let due = now + Cycle::from(transfer.wire_delay);
                let event = match transfer.endpoint {
                    TargetEndpoint::Router { router, in_port } => {
                        if is_head {
                            Event::HeadToRouter {
                                router: router as u32,
                                in_port: in_port.0 as u16,
                                vc: transfer.to_vc,
                                len: transfer.len,
                                packet: transfer.packet,
                            }
                        } else {
                            // Body and tail flits replay the per-packet
                            // template built at grant time.
                            transfer.body_event
                        }
                    }
                    TargetEndpoint::Sink { sink } => {
                        if is_head || is_tail {
                            Event::FlitToSink {
                                sink: sink as u32,
                                slot: transfer.to_vc,
                                is_head,
                                is_tail,
                                packet: transfer.packet,
                            }
                        } else {
                            transfer.body_event
                        }
                    }
                };
                self.events.schedule(due, event);

                // Transfer complete: free the upstream VC and return its
                // credit to whoever feeds it.
                if out_state.granted[0].is_complete() {
                    out_state.granted.remove(0);
                    if out_state.granted.is_empty() {
                        if let Some(mask) = router.granted_mask.as_mut() {
                            *mask &= !(1 << oi);
                        }
                    }
                    // The grant queue shrank: `can_grant` may flip, so the
                    // output's arbitration decision is stale.
                    if let Some(mask) = router.alloc_dirty.as_mut() {
                        *mask |= 1 << oi;
                    }
                    let port = &mut router.inputs[from_port];
                    let vc_state = &mut port.vcs[from_vc];
                    let was_reserved_vc = vc_state.reserved_vc();
                    vc_state.release();
                    port.occupied -= 1;
                    router.active_vcs -= 1;
                    match router.inputs[from_port].feeder {
                        Some(Feeder::RouterOutput {
                            router: fr,
                            out_port: fo,
                            target_idx: ft,
                        }) => {
                            self.events.schedule(
                                now + self.config.credit_delay,
                                Event::CreditToRouter {
                                    router: fr as u32,
                                    out_port: fo as u16,
                                    target_idx: ft as u16,
                                    vc: VcId(from_vc as u16),
                                    reserved_vc: was_reserved_vc,
                                },
                            );
                        }
                        Some(Feeder::Source { source }) => {
                            self.events.schedule(
                                now + self.config.credit_delay,
                                Event::CreditToSource {
                                    source: source as u32,
                                    vc: VcId(from_vc as u16),
                                },
                            );
                        }
                        None => {}
                    }
                }
            }
        }
        self.router_scan = scan;
    }

    // taqos-lint: hot
    fn handle_preemption_probe(&mut self, router: usize, in_port: usize, contender: FlowId) {
        let node = self.routers[router].node;
        // Victim candidates are gathered into a reusable buffer: under
        // saturation a probe fires for every blocked output every cycle, so
        // this path must not allocate. The reference engine allocates a
        // fresh vector per probe, as the seed did.
        let mut candidates = if self.config.engine.is_reference() {
            // taqos-lint: allow(hot-alloc) -- reference engine allocates per probe, as the seed did
            Vec::new()
        } else {
            std::mem::take(&mut self.probe_scratch)
        };
        candidates.clear();
        for vc in &self.routers[router].inputs[in_port].vcs {
            if vc.is_resident_idle() {
                // taqos-lint: allow(panic-path) -- is_resident_idle implies an occupant
                let pid = vc.packet().expect("resident VC has a packet");
                if let Some(packet) = self.packets.hot(pid) {
                    candidates.push((pid, packet.flow, packet.reserved));
                }
            }
        }
        if candidates.is_empty() {
            self.probe_scratch = candidates;
            return;
        }
        let victim = if self.config.engine.is_reference() {
            self.qos[router].select_victim(contender, &candidates)
        } else {
            // Annotate candidates with memoised priorities so the policy's
            // victim choice needs no per-probe priority recomputation.
            let mut prioritized = std::mem::take(&mut self.probe_prioritized_scratch);
            prioritized.clear();
            for &(pid, flow, reserved) in &candidates {
                let priority = cached_priority(&mut self.routers[router], &*self.qos[router], flow);
                prioritized.push((pid, flow, reserved, priority));
            }
            let contender_priority =
                cached_priority(&mut self.routers[router], &*self.qos[router], contender);
            let victim = self.qos[router].select_victim_prioritized(
                contender,
                contender_priority,
                &prioritized,
            );
            self.probe_prioritized_scratch = prioritized;
            victim
        };
        self.probe_scratch = candidates;
        let Some(victim_id) = victim else {
            return;
        };
        // Locate and flush the victim VC.
        let port = &mut self.routers[router].inputs[in_port];
        let Some(vc_idx) = port
            .vcs
            .iter()
            .position(|vc| vc.packet() == Some(victim_id) && vc.is_resident_idle())
        else {
            return;
        };
        // taqos-lint: allow(panic-index) -- vc_idx was just produced by position() over this vector
        let was_reserved_vc = port.vcs[vc_idx].reserved_vc();
        // A victim can be flushed in the event phase of the same cycle its
        // head arrived, i.e. before the routing phase ran; keep the
        // unrouted bookkeeping exact in that case.
        // taqos-lint: allow(panic-index) -- vc_idx was just produced by position() over this vector
        let victim_route = port.vcs[vc_idx].route();
        port.vcs[vc_idx].release();
        port.occupied -= 1;
        if victim_route.is_none() {
            port.unrouted -= 1;
        }
        let feeder = port.feeder;
        let router_state = &mut self.routers[router];
        router_state.active_vcs -= 1;
        match victim_route {
            None => router_state.unrouted_vcs -= 1,
            Some(out) if !self.config.engine.is_reference() => {
                // Routed but never granted: the victim still sits in its
                // output's persistent request list; retire the entry and
                // invalidate that output's cached decision.
                let bucket = &mut router_state.alloc_buckets[out.0];
                let pos = bucket
                    .binary_search_by_key(&(in_port as u16, vc_idx as u16), |r| (r.in_port, r.vc))
                    // taqos-lint: allow(panic-path) -- routed non-reference VCs always have a filed request
                    .expect("preempted packet must have a pending request");
                bucket.remove(pos);
                if let Some(mask) = router_state.alloc_dirty.as_mut() {
                    *mask |= 1 << out.0;
                }
            }
            Some(_) => {}
        }

        // As in delivery, only scalar fields of the victim are needed.
        let (victim_flow, victim_src, victim_origin) = {
            let victim = self
                .packets
                .get(victim_id)
                // taqos-lint: allow(panic-path) -- preemption victims are chosen from live residents
                .expect("victim packet must be live");
            (victim.flow, victim.src, victim.origin_source)
        };
        let wasted_hops = victim_src.column_distance(node);
        self.stats.record_preemption(victim_flow, wasted_hops);
        let cycle = self.now;
        self.trace.emit(|| TraceEvent::Preempt {
            cycle,
            flow: u64::from(victim_flow.0),
            packet: victim_id.0,
            router: router as u64,
        });

        // Return the freed buffer to the upstream channel so the contender
        // can claim it.
        match feeder {
            Some(Feeder::RouterOutput {
                router: fr,
                out_port: fo,
                target_idx: ft,
            }) => {
                self.events.schedule(
                    self.now + self.config.credit_delay,
                    Event::CreditToRouter {
                        router: fr as u32,
                        out_port: fo as u16,
                        target_idx: ft as u16,
                        vc: VcId(vc_idx as u16),
                        reserved_vc: was_reserved_vc,
                    },
                );
            }
            Some(Feeder::Source { source }) => {
                self.events.schedule(
                    self.now + self.config.credit_delay,
                    Event::CreditToSource {
                        source: source as u32,
                        vc: VcId(vc_idx as u16),
                    },
                );
            }
            None => {}
        }

        // NACK the injecting source over the ACK network; it will retransmit
        // (for closed-loop replies, the controller's source).
        let source = victim_origin
            .map(|s| s as usize)
            .unwrap_or_else(|| self.flow_to_source[victim_flow.index()]);
        self.events.schedule(
            self.now + self.config.ack_latency(wasted_hops),
            Event::Nack {
                source: source as u32,
                packet: victim_id,
            },
        );
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.spec.name)
            .field("policy", &self.policy.name())
            .field("now", &self.now)
            .field("routers", &self.routers.len())
            .field("sources", &self.sources.len())
            .field("sinks", &self.sinks.len())
            .field("live_packets", &self.packets.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Direction, NodeId, OutPortId};
    use crate::packet::{GeneratedPacket, PacketGenerator};
    use crate::qos::FifoPolicy;
    use crate::spec::{
        InputPortSpec, OutputPortSpec, RouterSpec, SinkSpec, SourceSpec, TargetSpec, VcConfig,
    };
    use std::collections::BTreeMap;

    /// Generator producing a fixed number of single-flit packets, one every
    /// `gap` cycles.
    struct BurstGenerator {
        dst: NodeId,
        remaining: u32,
        gap: u64,
        len: u8,
    }

    impl PacketGenerator for BurstGenerator {
        fn generate(&mut self, now: Cycle) -> Option<GeneratedPacket> {
            if self.remaining == 0 || !now.is_multiple_of(self.gap) {
                return None;
            }
            self.remaining -= 1;
            Some(GeneratedPacket {
                dst: self.dst,
                len_flits: self.len,
                class: crate::packet::PacketClass::Request,
            })
        }

        fn exhausted(&self) -> bool {
            self.remaining == 0
        }
    }

    /// Two-router chain: source at node 0 sends to the sink at node 1.
    fn chain_spec_with(injection_vcs: u8) -> NetworkSpec {
        let r0 = RouterSpec {
            node: NodeId(0),
            inputs: vec![InputPortSpec::injection(
                "term",
                VcConfig::new(injection_vcs, 4),
                0,
            )],
            outputs: vec![OutputPortSpec::network(
                "south",
                Direction::South,
                0,
                vec![TargetSpec::single(
                    TargetEndpoint::Router {
                        router: 1,
                        in_port: InPortId(0),
                    },
                    1,
                )],
            )],
            route_table: BTreeMap::from([(NodeId(1), vec![OutPortId(0)])]),
            va_latency: 1,
            xt_latency: 1,
        };
        let r1 = RouterSpec {
            node: NodeId(1),
            inputs: vec![InputPortSpec::network(
                "north",
                NodeId(0),
                Direction::South,
                0,
                VcConfig::new(2, 4),
                0,
            )],
            outputs: vec![OutputPortSpec::ejection("eject", 0, 0)],
            route_table: BTreeMap::from([(NodeId(1), vec![OutPortId(0)])]),
            va_latency: 1,
            xt_latency: 1,
        };
        NetworkSpec {
            name: "chain".to_string(),
            routers: vec![r0, r1],
            sources: vec![SourceSpec {
                flow: FlowId(0),
                node: NodeId(0),
                router: 0,
                in_port: InPortId(0),
                name: "n0.term".to_string(),
                window: 8,
            }],
            sinks: vec![SinkSpec {
                node: NodeId(1),
                name: "n1.sink".to_string(),
                slots: 2,
            }],
            flit_bytes: 16,
        }
    }

    fn chain_spec() -> NetworkSpec {
        chain_spec_with(1)
    }

    fn build_chain(count: u32, gap: u64, len: u8) -> Network {
        build_chain_with(chain_spec(), count, gap, len)
    }

    fn build_chain_with(spec: NetworkSpec, count: u32, gap: u64, len: u8) -> Network {
        let generators: Vec<Box<dyn PacketGenerator>> = vec![Box::new(BurstGenerator {
            dst: NodeId(1),
            remaining: count,
            gap,
            len,
        })];
        Network::new(
            spec,
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("chain network builds")
    }

    #[test]
    fn single_packet_is_delivered_with_expected_latency() {
        let mut net = build_chain(1, 1, 1);
        for _ in 0..100 {
            net.step();
            if net.is_quiescent() {
                break;
            }
        }
        assert!(net.is_quiescent(), "packet should be delivered and acked");
        let stats = net.into_stats();
        assert_eq!(stats.delivered_packets, 1);
        assert_eq!(stats.delivered_flits, 1);
        assert_eq!(stats.latency_samples, 1);
        // Birth -> injection (1 cycle) -> router 0 pipeline (2) -> wire (1)
        // -> router 1 pipeline (2) -> ejection. The exact constant is not the
        // point; it must be small and deterministic.
        assert!(stats.avg_latency() >= 5.0);
        assert!(
            stats.avg_latency() <= 12.0,
            "latency {}",
            stats.avg_latency()
        );
        assert_eq!(stats.useful_hops, 1);
        assert_eq!(stats.preemption_events, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut net = build_chain(50, 3, 2);
            for _ in 0..2_000 {
                net.step();
                if net.is_quiescent() {
                    break;
                }
            }
            let stats = net.into_stats();
            (stats.delivered_packets, stats.latency_sum, stats.cycles)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_packets_of_a_burst_are_delivered() {
        let mut net = build_chain(200, 1, 1);
        for _ in 0..5_000 {
            net.step();
            if net.is_quiescent() {
                break;
            }
        }
        assert!(net.is_quiescent(), "burst should drain");
        let stats = net.into_stats();
        assert_eq!(stats.delivered_packets, 200);
        assert_eq!(stats.generated_packets, 200);
        assert_eq!(stats.flows[0].delivered_packets, 200);
    }

    #[test]
    fn multi_flit_packets_account_all_flits() {
        let mut net = build_chain(10, 5, 4);
        for _ in 0..2_000 {
            net.step();
            if net.is_quiescent() {
                break;
            }
        }
        assert!(net.is_quiescent());
        let stats = net.into_stats();
        assert_eq!(stats.delivered_packets, 10);
        assert_eq!(stats.delivered_flits, 40);
        // Every flit is written once at the injection port, once at the
        // downstream router; read twice (once per launch).
        assert_eq!(stats.energy.buffer_writes, 80);
        assert_eq!(stats.energy.buffer_reads, 80);
        assert_eq!(stats.energy.xbar_flits, 80);
    }

    /// Three-router spec where router 0 drives a MECS-style multidrop channel
    /// whose two targets are routers 1 and 2 (wire delays 1 and 2); each
    /// downstream router ejects into its own sink.
    fn multidrop_spec() -> NetworkSpec {
        let vcs = VcConfig::new(4, 4);
        let downstream = |node: u16| RouterSpec {
            node: NodeId(node),
            inputs: vec![InputPortSpec::network(
                "from_n0",
                NodeId(0),
                Direction::South,
                0,
                vcs,
                0,
            )],
            outputs: vec![OutputPortSpec::ejection("eject", (node - 1) as usize, 0)],
            route_table: BTreeMap::from([(NodeId(node), vec![OutPortId(0)])]),
            va_latency: 2,
            xt_latency: 1,
        };
        let r0 = RouterSpec {
            node: NodeId(0),
            inputs: vec![InputPortSpec::injection("term", VcConfig::new(2, 4), 0)],
            outputs: vec![OutputPortSpec::network(
                "mecs_south",
                Direction::South,
                0,
                vec![
                    TargetSpec::covering(
                        TargetEndpoint::Router {
                            router: 1,
                            in_port: InPortId(0),
                        },
                        1,
                        vec![NodeId(1)],
                    ),
                    TargetSpec::covering(
                        TargetEndpoint::Router {
                            router: 2,
                            in_port: InPortId(0),
                        },
                        2,
                        vec![NodeId(2)],
                    ),
                ],
            )],
            route_table: BTreeMap::from([
                (NodeId(1), vec![OutPortId(0)]),
                (NodeId(2), vec![OutPortId(0)]),
            ]),
            va_latency: 2,
            xt_latency: 1,
        };
        NetworkSpec {
            name: "multidrop".to_string(),
            routers: vec![r0, downstream(1), downstream(2)],
            sources: vec![SourceSpec {
                flow: FlowId(0),
                node: NodeId(0),
                router: 0,
                in_port: InPortId(0),
                name: "n0.term".to_string(),
                window: 8,
            }],
            sinks: vec![
                SinkSpec {
                    node: NodeId(1),
                    name: "n1.sink".to_string(),
                    slots: 2,
                },
                SinkSpec {
                    node: NodeId(2),
                    name: "n2.sink".to_string(),
                    slots: 2,
                },
            ],
            flit_bytes: 16,
        }
    }

    /// Generator alternating between two fixed destinations.
    struct AlternatingGenerator {
        destinations: Vec<NodeId>,
        remaining: u32,
        next: usize,
    }

    impl PacketGenerator for AlternatingGenerator {
        fn generate(&mut self, _now: Cycle) -> Option<GeneratedPacket> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let dst = self.destinations[self.next % self.destinations.len()];
            self.next += 1;
            Some(GeneratedPacket {
                dst,
                len_flits: 1,
                class: crate::packet::PacketClass::Request,
            })
        }

        fn exhausted(&self) -> bool {
            self.remaining == 0
        }
    }

    #[test]
    fn multidrop_channels_deliver_to_the_right_drop_off_point() {
        // A MECS-style point-to-multipoint channel must steer each packet to
        // the target covering its destination, sharing one physical channel.
        let generators: Vec<Box<dyn PacketGenerator>> = vec![Box::new(AlternatingGenerator {
            destinations: vec![NodeId(1), NodeId(2)],
            remaining: 40,
            next: 0,
        })];
        let mut net = Network::new(
            multidrop_spec(),
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("multidrop network builds");
        for _ in 0..3_000 {
            net.step();
            if net.is_quiescent() {
                break;
            }
        }
        assert!(net.is_quiescent(), "all packets should be delivered");
        let stats = net.into_stats();
        assert_eq!(stats.delivered_packets, 40);
        // Both destinations received their half of the traffic: each packet
        // travelled exactly one hop (to node 1) or two hop-equivalents (to
        // node 2), so total useful hops are 20*1 + 20*2.
        assert_eq!(stats.useful_hops, 60);
        // The farther drop-off point pays the longer wire: total link
        // flit-hops are 20*1 + 20*2 as well.
        assert_eq!(stats.energy.link_flit_hops, 60);
    }

    #[test]
    fn throughput_saturates_near_link_rate() {
        // Offered load far exceeds the single-channel capacity. With two
        // injection VCs and long packets the channel pipelines back-to-back
        // transfers, so accepted throughput must approach (and never exceed)
        // one flit per cycle.
        let mut net = build_chain_with(chain_spec_with(2), 10_000, 1, 4);
        net.run_for(3_000);
        let delivered = net.delivered_flits();
        assert!(delivered > 2_300, "delivered only {delivered} flits");
        assert!(delivered <= 3_000);
    }

    /// Two routers wired in both directions, a source and a sink at each
    /// node: the smallest fabric on which a request/reply round trip runs.
    fn bidirectional_spec() -> NetworkSpec {
        let vcs = VcConfig::new(4, 4);
        let router = |node: u16, peer: u16| RouterSpec {
            node: NodeId(node),
            inputs: vec![
                InputPortSpec::injection("term", VcConfig::new(2, 4), 0),
                InputPortSpec::network(
                    "in",
                    NodeId(peer),
                    if node == 1 {
                        Direction::South
                    } else {
                        Direction::North
                    },
                    0,
                    vcs,
                    1,
                ),
            ],
            outputs: vec![
                OutputPortSpec::network(
                    "out",
                    if node == 0 {
                        Direction::South
                    } else {
                        Direction::North
                    },
                    0,
                    vec![TargetSpec::single(
                        TargetEndpoint::Router {
                            router: peer as usize,
                            in_port: InPortId(1),
                        },
                        1,
                    )],
                ),
                OutputPortSpec::ejection("eject", node as usize, 0),
            ],
            route_table: BTreeMap::from([
                (NodeId(peer), vec![OutPortId(0)]),
                (NodeId(node), vec![OutPortId(1)]),
            ]),
            va_latency: 1,
            xt_latency: 1,
        };
        let source = |node: u16| SourceSpec {
            flow: FlowId(node),
            node: NodeId(node),
            router: node as usize,
            in_port: InPortId(0),
            name: format!("n{node}.term"),
            window: 8,
        };
        let sink = |node: u16| SinkSpec {
            node: NodeId(node),
            name: format!("n{node}.sink"),
            slots: 2,
        };
        NetworkSpec {
            name: "bidi".to_string(),
            routers: vec![router(0, 1), router(1, 0)],
            sources: vec![source(0), source(1)],
            sinks: vec![sink(0), sink(1)],
            flit_bytes: 16,
        }
    }

    fn closed_loop_network(mlp: usize, total: Option<u64>) -> Network {
        let generators: Vec<Box<dyn PacketGenerator>> = vec![
            Box::new(crate::packet::IdleGenerator),
            Box::new(crate::packet::IdleGenerator),
        ];
        let mut requester = crate::closed_loop::RequesterSpec::paper(NodeId(1), mlp);
        requester.total = total;
        let spec = crate::closed_loop::ClosedLoopSpec::new(2).with_requester(FlowId(0), requester);
        Network::new(
            bidirectional_spec(),
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("bidirectional network builds")
        .with_closed_loop(spec)
        .expect("closed loop installs")
    }

    #[test]
    fn closed_loop_round_trips_complete_and_conserve() {
        let mut net = closed_loop_network(2, Some(20));
        for _ in 0..5_000 {
            net.step();
            if net.is_quiescent() {
                break;
            }
        }
        assert!(net.is_quiescent(), "bounded closed loop should complete");
        let stats = net.into_stats();
        // 20 requests and 20 replies, all delivered.
        assert_eq!(stats.flows[0].issued_requests, 20);
        assert_eq!(stats.round_trips, 20);
        assert_eq!(stats.flows[0].round_trips, 20);
        assert_eq!(stats.delivered_packets, 40);
        // 20 single-flit requests + 20 four-flit replies.
        assert_eq!(stats.delivered_flits, 20 + 80);
        // Replies are generated at the controller's source but travel on the
        // requester's flow.
        assert_eq!(stats.flows[1].generated_packets, 20);
        assert_eq!(stats.flows[0].delivered_flits, 80 + 20);
        assert!(stats.avg_round_trip().expect("round trips measured") > 0.0);
        // The round trip covers both directions, so it exceeds the one-way
        // request latency.
        assert!(stats.avg_round_trip().unwrap() > stats.avg_latency());
    }

    #[test]
    fn mlp_window_self_limits_throughput() {
        let run = |mlp: usize| {
            let mut net = closed_loop_network(mlp, None);
            net.run_for(2_000);
            net.into_stats().round_trips
        };
        let shallow = run(1);
        let deep = run(4);
        assert!(shallow > 0, "even MLP 1 makes progress");
        assert!(
            deep > shallow,
            "a deeper window must sustain more round trips ({deep} vs {shallow})"
        );
    }

    #[test]
    fn closed_loop_rejects_mismatched_specs() {
        let generators: Vec<Box<dyn PacketGenerator>> = vec![
            Box::new(crate::packet::IdleGenerator),
            Box::new(crate::packet::IdleGenerator),
        ];
        let net = Network::new(
            bidirectional_spec(),
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("network builds");
        // Wrong flow count.
        assert!(net
            .with_closed_loop(crate::closed_loop::ClosedLoopSpec::new(1))
            .is_err());

        // A producing generator at the controller's source would starve the
        // reply port: rejected at install time.
        let generators: Vec<Box<dyn PacketGenerator>> = vec![
            Box::new(crate::packet::IdleGenerator),
            Box::new(BurstGenerator {
                dst: NodeId(0),
                remaining: 100,
                gap: 1,
                len: 1,
            }),
        ];
        let net = Network::new(
            bidirectional_spec(),
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("network builds");
        let spec = crate::closed_loop::ClosedLoopSpec::new(2).with_requester(
            FlowId(0),
            crate::closed_loop::RequesterSpec::paper(NodeId(1), 2),
        );
        assert!(net.with_closed_loop(spec).is_err());
    }

    fn closed_loop_dram_network(
        mlp: usize,
        total: Option<u64>,
        dram: crate::closed_loop::DramConfig,
    ) -> Network {
        let generators: Vec<Box<dyn PacketGenerator>> = vec![
            Box::new(crate::packet::IdleGenerator),
            Box::new(crate::packet::IdleGenerator),
        ];
        let mut requester = crate::closed_loop::RequesterSpec::paper(NodeId(1), mlp);
        requester.total = total;
        let spec = crate::closed_loop::ClosedLoopSpec::new(2)
            .with_requester(FlowId(0), requester)
            .with_dram(dram);
        Network::new(
            bidirectional_spec(),
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("bidirectional network builds")
        .with_closed_loop(spec)
        .expect("closed loop installs")
    }

    fn run_to_quiescence(net: &mut Network, max_cycles: u64) {
        for _ in 0..max_cycles {
            net.step();
            if net.is_quiescent() {
                return;
            }
        }
        panic!("closed loop did not complete within {max_cycles} cycles");
    }

    #[test]
    fn dram_service_time_extends_the_round_trip_exactly() {
        // One uncontended request: the DRAM-backed round trip is the instant
        // controller's round trip plus exactly one row-miss service latency
        // (a cold bank's first access always misses).
        let mut plain = closed_loop_network(1, Some(1));
        run_to_quiescence(&mut plain, 1_000);
        let plain = plain.into_stats();

        let dram = crate::closed_loop::DramConfig::paper().with_latencies(18, 48);
        let mut backed = closed_loop_dram_network(1, Some(1), dram);
        run_to_quiescence(&mut backed, 1_000);
        let backed = backed.into_stats();

        assert_eq!(backed.dram.serviced_requests, 1);
        assert_eq!(backed.dram.row_misses, 1);
        assert_eq!(backed.dram.row_hits, 0);
        assert_eq!(backed.dram.bank_busy_cycles, 48);
        assert_eq!(
            backed.avg_round_trip().expect("round trip measured"),
            plain.avg_round_trip().expect("round trip measured") + 48.0,
        );
    }

    #[test]
    fn row_buffer_hits_follow_the_open_row_deterministically() {
        // A single-bank controller with 4-line rows serving a strictly
        // sequential (MLP 1) stream of 8 lines: lines 0–3 share row 0 and
        // lines 4–7 share row 1, so exactly the two row openings miss.
        let dram = crate::closed_loop::DramConfig::paper()
            .with_banks(1)
            .with_lines_per_row(4);
        let mut net = closed_loop_dram_network(1, Some(8), dram);
        run_to_quiescence(&mut net, 5_000);
        let stats = net.into_stats();
        assert_eq!(stats.dram.serviced_requests, 8);
        assert_eq!(stats.dram.row_misses, 2);
        assert_eq!(stats.dram.row_hits, 6);
        assert_eq!(
            stats.dram.bank_busy_cycles,
            2 * dram.row_miss_latency + 6 * dram.row_hit_latency
        );
        assert_eq!(stats.dram.row_hit_rate(), Some(0.75));
        assert_eq!(stats.round_trips, 8);
    }

    #[test]
    fn full_queue_nacks_retry_and_still_conserve_round_trips() {
        // A one-entry queue in front of one slow bank, hammered through a
        // deep window: overflow requests are NACKed and retransmitted, yet
        // every request completes exactly one round trip and is counted as
        // delivered exactly once.
        let dram = crate::closed_loop::DramConfig::paper()
            .with_banks(1)
            .with_queue_depth(1)
            .with_latencies(40, 80);
        let mut net = closed_loop_dram_network(8, Some(20), dram);
        run_to_quiescence(&mut net, 50_000);
        // The sink counters agree with the stats: rejected arrivals are
        // discarded, not delivered, so both count each packet exactly once.
        // 20 single-flit requests + 20 four-flit replies.
        assert_eq!(net.delivered_flits(), 20 + 80);
        let stats = net.into_stats();
        assert!(
            stats.dram.rejected_requests > 0,
            "a 1-deep queue under MLP 8 must overflow"
        );
        assert_eq!(stats.flows[0].dram_rejections, stats.dram.rejected_requests);
        assert!(
            stats.flows[0].retransmissions >= stats.dram.rejected_requests,
            "every rejection forces a retransmission"
        );
        assert_eq!(stats.dram.stalled_requests, 0);
        assert_eq!(stats.round_trips, 20);
        assert_eq!(stats.dram.serviced_requests, 20);
        // 20 requests + 20 replies, each recorded delivered exactly once
        // (rejected arrivals are not deliveries).
        assert_eq!(stats.delivered_packets, 40);
        assert_eq!(stats.generated_packets, 40);
        assert!(stats.dram.max_queue_occupancy <= 1);
    }

    #[test]
    fn stall_backpressure_holds_credits_instead_of_nacking() {
        let dram = crate::closed_loop::DramConfig::paper()
            .with_banks(1)
            .with_queue_depth(1)
            .with_latencies(40, 80)
            .with_backpressure(crate::closed_loop::DramBackpressure::Stall);
        let mut net = closed_loop_dram_network(8, Some(20), dram);
        run_to_quiescence(&mut net, 50_000);
        let stats = net.into_stats();
        assert!(
            stats.dram.stalled_requests > 0,
            "a 1-deep queue under MLP 8 must stall arrivals"
        );
        assert_eq!(stats.dram.rejected_requests, 0);
        assert_eq!(
            stats.flows[0].retransmissions, 0,
            "stalling must not generate retry traffic"
        );
        assert_eq!(stats.round_trips, 20);
        assert_eq!(stats.delivered_packets, 40);
        assert!(stats.dram.avg_queue_wait().expect("requests waited") > 0.0);
    }

    #[test]
    fn closed_page_policy_pays_activate_plus_cas_on_every_access() {
        // The same 8-line sequential stream as the open-page test above:
        // under the closed-page policy nothing ever hits (the bank
        // auto-precharges), but every access costs only activate + CAS.
        let dram = crate::closed_loop::DramConfig::paper()
            .with_banks(1)
            .with_lines_per_row(4)
            .with_page_policy(crate::closed_loop::PagePolicy::Closed);
        let mut net = closed_loop_dram_network(1, Some(8), dram);
        run_to_quiescence(&mut net, 5_000);
        let stats = net.into_stats();
        assert_eq!(stats.dram.serviced_requests, 8);
        assert_eq!(stats.dram.row_hits, 0);
        assert_eq!(stats.dram.row_misses, 8);
        assert_eq!(stats.dram.row_hit_rate(), Some(0.0));
        assert_eq!(stats.dram.bank_busy_cycles, 8 * dram.closed_page_latency());
        assert_eq!(stats.round_trips, 8);
    }

    #[test]
    fn priority_schedulers_preserve_uncontended_timing_and_conservation() {
        // A single uncontended flow: FR-FCFS has nothing to reorder and
        // priority admission nothing to evict (a flow never outranks
        // itself), so round-trip timing matches FCFS exactly even though
        // delivery is deferred to service start — and a saturated one-entry
        // queue degrades to pure overflow NACKs, conserving every round
        // trip.
        let fcfs = crate::closed_loop::DramConfig::paper();
        let mut baseline = closed_loop_dram_network(1, Some(4), fcfs);
        run_to_quiescence(&mut baseline, 5_000);
        let baseline = baseline.into_stats();
        for scheduler in [
            crate::closed_loop::DramScheduler::PriorityAdmission,
            crate::closed_loop::DramScheduler::FrFcfs,
        ] {
            let mut net = closed_loop_dram_network(1, Some(4), fcfs.with_scheduler(scheduler));
            run_to_quiescence(&mut net, 5_000);
            let stats = net.into_stats();
            assert_eq!(
                stats.avg_round_trip(),
                baseline.avg_round_trip(),
                "{scheduler:?} changed uncontended round trips"
            );
            assert_eq!(stats.round_trips, 4);
            assert_eq!(stats.delivered_packets, 8);
        }
        let saturating = fcfs
            .with_banks(1)
            .with_queue_depth(1)
            .with_latencies(40, 80)
            .with_scheduler(crate::closed_loop::DramScheduler::PriorityAdmission);
        let mut net = closed_loop_dram_network(8, Some(20), saturating);
        run_to_quiescence(&mut net, 50_000);
        let stats = net.into_stats();
        assert!(stats.dram.rejected_requests > 0, "queue must overflow");
        assert_eq!(
            stats.dram.evicted_requests, 0,
            "a flow must not evict its own requests"
        );
        assert_eq!(stats.round_trips, 20);
        // Deferred delivery still records each request exactly once.
        assert_eq!(stats.delivered_packets, 40);
        assert_eq!(stats.generated_packets, 40);
        assert!(
            stats.flows[0].retransmissions >= stats.dram.rejected_requests,
            "every overflow NACK forces a retransmission"
        );
    }

    #[test]
    fn invalid_dram_config_is_rejected_at_install() {
        let generators: Vec<Box<dyn PacketGenerator>> = vec![
            Box::new(crate::packet::IdleGenerator),
            Box::new(crate::packet::IdleGenerator),
        ];
        let net = Network::new(
            bidirectional_spec(),
            Box::new(FifoPolicy::new()),
            generators,
            SimConfig::default(),
        )
        .expect("network builds");
        let spec = crate::closed_loop::ClosedLoopSpec::new(2)
            .with_requester(
                FlowId(0),
                crate::closed_loop::RequesterSpec::paper(NodeId(1), 2),
            )
            .with_dram(crate::closed_loop::DramConfig::paper().with_banks(0));
        assert!(net.with_closed_loop(spec).is_err());
    }

    #[test]
    fn single_injection_vc_serialises_injection() {
        // With a single injection VC a short packet occupies the VC for the
        // full pipeline plus credit turnaround, limiting accepted throughput
        // to roughly one packet every three cycles.
        let mut net = build_chain(10_000, 1, 1);
        net.run_for(3_000);
        let delivered = net.delivered_flits();
        assert!(delivered > 800, "delivered only {delivered} flits");
        assert!(delivered < 1_500, "delivered {delivered} flits");
    }
}
