//! Runtime router state and routing helpers.

use crate::event::Event;
use crate::ids::{FlowId, NodeId, OutPortId, PacketId};
use crate::port::{InputPortState, OutputPortState};
use crate::spec::{InputKind, InputPortSpec, OutputKind, OutputPortSpec, RouterSpec};

/// One candidate in a virtual-channel allocation round: a buffered packet
/// head requesting an output port. Gathered into the router's reusable
/// scratch buffer each cycle, so steady-state arbitration performs no heap
/// allocation.
#[derive(Debug, Clone)]
pub(crate) struct ArbRequest {
    /// Input port holding the requesting packet (ports per router are far
    /// below `u16::MAX`; narrow fields keep the request at 24 bytes).
    pub in_port: u16,
    /// VC index at that input port.
    pub vc: u16,
    /// Requesting packet.
    pub packet: PacketId,
    /// Flow of the packet.
    pub flow: FlowId,
    /// Packet length in flits.
    pub len: u8,
    /// Whether the packet is rate-compliant (reserved quota).
    pub reserved: bool,
    /// Target (drop-off point) of the output port serving the destination.
    pub target_idx: u16,
    /// Whether the input port is a pass-through (DPS intermediate hop).
    pub passthrough: bool,
    /// Dynamic priority assigned by the QOS policy (lower wins).
    pub priority: u64,
    /// Whether the target currently has a claimable downstream VC.
    pub has_credit: bool,
}

/// One entry of a router's per-flow priority memo: the cached priority and
/// the epoch stamp it was computed under. Value and stamp travel in one
/// 16-byte record so a cache probe touches a single array (one potential
/// miss) instead of parallel value/epoch vectors.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PriorityMemo {
    /// Cached `RouterQos::priority` value for the flow.
    pub value: u64,
    /// Epoch the value was computed in; stale when it differs from the
    /// router's `priority_epoch`.
    pub epoch: u64,
}

/// Runtime state of one router.
#[derive(Debug)]
pub struct RouterState {
    /// Node this router serves.
    pub node: NodeId,
    /// Input port states.
    pub inputs: Vec<InputPortState>,
    /// Output port states.
    pub outputs: Vec<OutputPortState>,
    /// Round-robin cursor used when a destination maps to several candidate
    /// output ports (replicated mesh channels).
    pub route_rr_cursor: usize,
    /// Number of currently occupied input VCs across all input ports. The
    /// router is skipped by the routing/allocation/launch phases when this is
    /// zero (active-set tracking): every unit of per-cycle router work is
    /// rooted in a buffered packet.
    pub active_vcs: usize,
    /// Number of occupied input VCs still awaiting route computation
    /// (router-level sum of the ports' `unrouted` counters).
    pub unrouted_vcs: usize,
    /// Persistent per-output arbitration request lists (see [`ArbRequest`]).
    /// The optimized engine maintains them incrementally — a request is
    /// inserted (ordered by `(in_port, vc)`, the reference scan order) when
    /// the routing phase assigns the packet's output, and removed when the
    /// packet wins a grant or is preempted — so arbitration never rescans
    /// input ports and performs no steady-state allocation. Priorities and
    /// credit state are refreshed each decision, as they change cycle to
    /// cycle.
    pub(crate) alloc_buckets: Vec<Vec<ArbRequest>>,
    /// Bitmask of output ports that currently hold granted transfers (bit
    /// `oi` set ⇔ `outputs[oi].granted` is non-empty), maintained for
    /// routers with at most 64 outputs so the launch phase can walk set bits
    /// instead of scanning every output. `None` disables the fast path for
    /// wider routers.
    pub(crate) granted_mask: Option<u64>,
    /// Dense routing table: candidate output ports indexed by destination
    /// node, flattened from the spec's `BTreeMap` at construction so the
    /// per-packet route lookup is an array index instead of a tree walk.
    pub(crate) route_lut: Vec<Vec<OutPortId>>,
    /// Dirty bits for arbitration (optimized engine, routers with at most 64
    /// outputs). An output's bit is set whenever anything feeding its
    /// decision changes: a request enters or leaves its bucket, one of its
    /// targets gains or loses a credit, its grant queue shrinks, any packet
    /// is forwarded by this router (priorities move), or a frame rolls over.
    /// A *clean* blocked output must reach the same no-winner outcome as last
    /// cycle, so the allocation phase skips the decision and replays the
    /// cached preemption probe (`cached_probe`) instead. `None` disables the
    /// fast path for wider routers.
    pub(crate) alloc_dirty: Option<u64>,
    /// Per-output cached no-winner outcome: the preemption probe (if any)
    /// that the last full decision scheduled. Valid only while the output's
    /// dirty bit is clear.
    pub(crate) cached_probe: Vec<Option<Event>>,
    /// Crossbar group of each input port, copied out of the spec into a
    /// dense byte array so the launch phase's per-flit conflict check does
    /// not touch the (cold, large-stride) `InputPortSpec` records.
    pub(crate) xbar_groups: Vec<u8>,
    /// Memoised per-flow priorities (optimized engine only). `priority()` is
    /// a virtual call with a floating-point division inside PVC; under
    /// saturation the same flow re-arbitrates at many outputs every cycle,
    /// so the network caches the value per router. Priorities only move on
    /// the two events of the `RouterQos::priority` stability contract, and
    /// the cache is maintained accordingly: a frame rollover bumps
    /// `priority_epoch` (invalidating every entry), while forwarding a
    /// packet refreshes just the forwarded flow's entry in place.
    pub(crate) priority_cache: Vec<PriorityMemo>,
    /// Current priority epoch; entries with a different stamp are stale.
    pub(crate) priority_epoch: u64,
}

impl RouterState {
    /// Creates runtime state for a router from its specification.
    pub fn from_spec(spec: &RouterSpec) -> Self {
        let lut_len = spec
            .route_table
            .keys()
            .map(|node| node.index() + 1)
            .max()
            .unwrap_or(0);
        let mut route_lut = vec![Vec::new(); lut_len];
        for (node, candidates) in &spec.route_table {
            route_lut[node.index()] = candidates.clone();
        }
        RouterState {
            node: spec.node,
            inputs: spec.inputs.iter().map(InputPortState::from_spec).collect(),
            outputs: spec
                .outputs
                .iter()
                .map(OutputPortState::from_spec)
                .collect(),
            route_rr_cursor: 0,
            active_vcs: 0,
            unrouted_vcs: 0,
            granted_mask: (spec.outputs.len() <= 64).then_some(0),
            alloc_dirty: (spec.outputs.len() <= 64).then_some(u64::MAX),
            cached_probe: vec![None; spec.outputs.len()],
            xbar_groups: spec.inputs.iter().map(|p| p.xbar_group).collect(),
            route_lut,
            alloc_buckets: (0..spec.outputs.len()).map(|_| Vec::new()).collect(),
            priority_cache: Vec::new(),
            priority_epoch: 1,
        }
    }

    /// Sizes the per-flow priority cache (called once by the network
    /// constructor, which knows the flow count).
    pub(crate) fn init_priority_cache(&mut self, num_flows: usize) {
        self.priority_cache = vec![PriorityMemo { value: 0, epoch: 0 }; num_flows];
    }

    /// Marks one output's arbitration decision stale.
    #[inline]
    pub(crate) fn mark_output_dirty(&mut self, oi: usize) {
        if let Some(mask) = self.alloc_dirty.as_mut() {
            *mask |= 1 << oi;
        }
    }

    /// Marks every output's arbitration decision stale (a forwarded packet
    /// moved this router's priorities, or a frame rolled over).
    #[inline]
    pub(crate) fn mark_all_dirty(&mut self) {
        if let Some(mask) = self.alloc_dirty.as_mut() {
            *mask = u64::MAX;
        }
    }

    /// Number of packets currently buffered in the router.
    pub fn buffered_packets(&self) -> usize {
        self.inputs.iter().map(|p| p.occupied_vcs()).sum()
    }
}

/// Computes the output port a packet arriving at `in_port` and destined for
/// `dst` should take at the router described by `spec`.
///
/// Pass-through and fixed-route ports always use their configured output.
/// Otherwise the routing table is consulted; when several candidate ports
/// exist (replicated mesh channels) the packet stays on the channel it
/// arrived on if possible and otherwise candidates are balanced round-robin
/// using `rr_cursor`.
///
/// # Panics
///
/// Panics if the routing table has no entry for `dst` — that is a topology
/// construction bug, not a runtime condition.
pub fn compute_route(
    spec: &RouterSpec,
    in_port: &InputPortSpec,
    dst: NodeId,
    rr_cursor: &mut usize,
) -> OutPortId {
    if let Some(fixed) = in_port.fixed_route {
        return fixed;
    }
    let candidates = spec
        .route_table
        .get(&dst)
        .unwrap_or_else(|| panic!("router {} has no route for destination {dst}", spec.node));
    select_route(spec, in_port, dst, candidates, rr_cursor)
}

/// Selects among pre-resolved candidate output ports (shared by the
/// `BTreeMap` lookup above and the dense [`RouterState::route_lut`] path the
/// optimized engine uses).
pub(crate) fn select_route(
    spec: &RouterSpec,
    in_port: &InputPortSpec,
    dst: NodeId,
    candidates: &[OutPortId],
    rr_cursor: &mut usize,
) -> OutPortId {
    assert!(
        !candidates.is_empty(),
        "router {} has an empty candidate list for {dst}",
        spec.node
    );
    if candidates.len() == 1 {
        return candidates[0];
    }
    if let InputKind::Network { channel, .. } = in_port.kind {
        if let Some(&same) = candidates.iter().find(|&&out| {
            matches!(
                spec.outputs[out.0].kind,
                OutputKind::Network { channel: c, .. } if c == channel
            )
        }) {
            return same;
        }
    }
    let pick = candidates[*rr_cursor % candidates.len()];
    *rr_cursor = rr_cursor.wrapping_add(1);
    pick
}

/// Resolves which target (drop-off point) of an output port serves packets
/// destined for `dst`.
///
/// # Panics
///
/// Panics if a multi-target port has no target covering `dst` — a topology
/// construction bug.
pub fn resolve_target_idx(out_port: &OutputPortSpec, dst: NodeId) -> usize {
    if out_port.targets.len() == 1 {
        return 0;
    }
    out_port
        .targets
        .iter()
        .position(|t| t.covers.contains(&dst))
        .unwrap_or_else(|| {
            panic!(
                "output port {} has no target covering destination {dst}",
                out_port.name
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;
    use crate::spec::{TargetEndpoint, TargetSpec, VcConfig};
    use std::collections::BTreeMap;

    fn replicated_router() -> RouterSpec {
        let targets = |_ch: u8| vec![TargetSpec::single(TargetEndpoint::Sink { sink: 0 }, 1)];
        RouterSpec {
            node: NodeId(3),
            inputs: vec![
                InputPortSpec::injection("term", VcConfig::new(1, 4), 0),
                InputPortSpec::network(
                    "south_ch0",
                    NodeId(4),
                    Direction::North,
                    0,
                    VcConfig::new(2, 4),
                    1,
                ),
                InputPortSpec::network(
                    "south_ch1",
                    NodeId(4),
                    Direction::North,
                    1,
                    VcConfig::new(2, 4),
                    2,
                ),
            ],
            outputs: vec![
                OutputPortSpec::network("north_ch0", Direction::North, 0, targets(0)),
                OutputPortSpec::network("north_ch1", Direction::North, 1, targets(1)),
                OutputPortSpec::ejection("eject", 0, 0),
            ],
            route_table: BTreeMap::from([
                (NodeId(0), vec![OutPortId(0), OutPortId(1)]),
                (NodeId(3), vec![OutPortId(2)]),
            ]),
            va_latency: 1,
            xt_latency: 1,
        }
    }

    #[test]
    fn router_state_mirrors_spec_shape() {
        let spec = replicated_router();
        let state = RouterState::from_spec(&spec);
        assert_eq!(state.inputs.len(), 3);
        assert_eq!(state.outputs.len(), 3);
        assert_eq!(state.buffered_packets(), 0);
        assert_eq!(state.node, NodeId(3));
    }

    #[test]
    fn fixed_route_wins() {
        let spec = replicated_router();
        let mut rr = 0;
        let port =
            InputPortSpec::injection("term", VcConfig::new(1, 4), 0).with_fixed_route(OutPortId(1));
        assert_eq!(
            compute_route(&spec, &port, NodeId(0), &mut rr),
            OutPortId(1)
        );
    }

    #[test]
    fn single_candidate_is_used_directly() {
        let spec = replicated_router();
        let mut rr = 0;
        assert_eq!(
            compute_route(&spec, &spec.inputs[0], NodeId(3), &mut rr),
            OutPortId(2)
        );
        assert_eq!(rr, 0);
    }

    #[test]
    fn packets_stay_on_their_channel_when_possible() {
        let spec = replicated_router();
        let mut rr = 0;
        // Arrived on channel 1 -> keeps channel 1.
        assert_eq!(
            compute_route(&spec, &spec.inputs[2], NodeId(0), &mut rr),
            OutPortId(1)
        );
        // Arrived on channel 0 -> keeps channel 0.
        assert_eq!(
            compute_route(&spec, &spec.inputs[1], NodeId(0), &mut rr),
            OutPortId(0)
        );
    }

    #[test]
    fn injected_packets_round_robin_over_channels() {
        let spec = replicated_router();
        let mut rr = 0;
        let a = compute_route(&spec, &spec.inputs[0], NodeId(0), &mut rr);
        let b = compute_route(&spec, &spec.inputs[0], NodeId(0), &mut rr);
        let c = compute_route(&spec, &spec.inputs[0], NodeId(0), &mut rr);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "no route for destination")]
    fn missing_route_panics() {
        let spec = replicated_router();
        let mut rr = 0;
        compute_route(&spec, &spec.inputs[0], NodeId(7), &mut rr);
    }

    #[test]
    fn target_resolution_by_coverage() {
        let multi = OutputPortSpec::network(
            "mecs_south",
            Direction::South,
            0,
            vec![
                TargetSpec::covering(TargetEndpoint::Sink { sink: 0 }, 1, vec![NodeId(4)]),
                TargetSpec::covering(
                    TargetEndpoint::Sink { sink: 1 },
                    2,
                    vec![NodeId(5), NodeId(6)],
                ),
            ],
        );
        assert_eq!(resolve_target_idx(&multi, NodeId(4)), 0);
        assert_eq!(resolve_target_idx(&multi, NodeId(6)), 1);
        let single = OutputPortSpec::ejection("eject", 0, 0);
        assert_eq!(resolve_target_idx(&single, NodeId(9)), 0);
    }

    #[test]
    #[should_panic(expected = "no target covering")]
    fn uncovered_destination_panics() {
        let multi = OutputPortSpec::network(
            "mecs_south",
            Direction::South,
            0,
            vec![
                TargetSpec::covering(TargetEndpoint::Sink { sink: 0 }, 1, vec![NodeId(4)]),
                TargetSpec::covering(TargetEndpoint::Sink { sink: 1 }, 2, vec![NodeId(5)]),
            ],
        );
        resolve_target_idx(&multi, NodeId(6));
    }
}
