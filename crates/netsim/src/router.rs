//! Runtime router state and routing helpers.

use crate::ids::{NodeId, OutPortId};
use crate::port::{InputPortState, OutputPortState};
use crate::spec::{InputKind, InputPortSpec, OutputKind, OutputPortSpec, RouterSpec};

/// Runtime state of one router.
#[derive(Debug)]
pub struct RouterState {
    /// Node this router serves.
    pub node: NodeId,
    /// Input port states.
    pub inputs: Vec<InputPortState>,
    /// Output port states.
    pub outputs: Vec<OutputPortState>,
    /// Round-robin cursor used when a destination maps to several candidate
    /// output ports (replicated mesh channels).
    pub route_rr_cursor: usize,
}

impl RouterState {
    /// Creates runtime state for a router from its specification.
    pub fn from_spec(spec: &RouterSpec) -> Self {
        RouterState {
            node: spec.node,
            inputs: spec.inputs.iter().map(InputPortState::from_spec).collect(),
            outputs: spec
                .outputs
                .iter()
                .map(OutputPortState::from_spec)
                .collect(),
            route_rr_cursor: 0,
        }
    }

    /// Number of packets currently buffered in the router.
    pub fn buffered_packets(&self) -> usize {
        self.inputs.iter().map(|p| p.occupied_vcs()).sum()
    }
}

/// Computes the output port a packet arriving at `in_port` and destined for
/// `dst` should take at the router described by `spec`.
///
/// Pass-through and fixed-route ports always use their configured output.
/// Otherwise the routing table is consulted; when several candidate ports
/// exist (replicated mesh channels) the packet stays on the channel it
/// arrived on if possible and otherwise candidates are balanced round-robin
/// using `rr_cursor`.
///
/// # Panics
///
/// Panics if the routing table has no entry for `dst` — that is a topology
/// construction bug, not a runtime condition.
pub fn compute_route(
    spec: &RouterSpec,
    in_port: &InputPortSpec,
    dst: NodeId,
    rr_cursor: &mut usize,
) -> OutPortId {
    if let Some(fixed) = in_port.fixed_route {
        return fixed;
    }
    let candidates = spec
        .route_table
        .get(&dst)
        .unwrap_or_else(|| panic!("router {} has no route for destination {dst}", spec.node));
    assert!(
        !candidates.is_empty(),
        "router {} has an empty candidate list for {dst}",
        spec.node
    );
    if candidates.len() == 1 {
        return candidates[0];
    }
    if let InputKind::Network { channel, .. } = in_port.kind {
        if let Some(&same) = candidates.iter().find(|&&out| {
            matches!(
                spec.outputs[out.0].kind,
                OutputKind::Network { channel: c, .. } if c == channel
            )
        }) {
            return same;
        }
    }
    let pick = candidates[*rr_cursor % candidates.len()];
    *rr_cursor = rr_cursor.wrapping_add(1);
    pick
}

/// Resolves which target (drop-off point) of an output port serves packets
/// destined for `dst`.
///
/// # Panics
///
/// Panics if a multi-target port has no target covering `dst` — a topology
/// construction bug.
pub fn resolve_target_idx(out_port: &OutputPortSpec, dst: NodeId) -> usize {
    if out_port.targets.len() == 1 {
        return 0;
    }
    out_port
        .targets
        .iter()
        .position(|t| t.covers.contains(&dst))
        .unwrap_or_else(|| {
            panic!(
                "output port {} has no target covering destination {dst}",
                out_port.name
            )
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Direction;
    use crate::spec::{TargetEndpoint, TargetSpec, VcConfig};
    use std::collections::BTreeMap;

    fn replicated_router() -> RouterSpec {
        let targets = |_ch: u8| {
            vec![TargetSpec::single(
                TargetEndpoint::Sink { sink: 0 },
                1,
            )]
        };
        RouterSpec {
            node: NodeId(3),
            inputs: vec![
                InputPortSpec::injection("term", VcConfig::new(1, 4), 0),
                InputPortSpec::network(
                    "south_ch0",
                    NodeId(4),
                    Direction::North,
                    0,
                    VcConfig::new(2, 4),
                    1,
                ),
                InputPortSpec::network(
                    "south_ch1",
                    NodeId(4),
                    Direction::North,
                    1,
                    VcConfig::new(2, 4),
                    2,
                ),
            ],
            outputs: vec![
                OutputPortSpec::network("north_ch0", Direction::North, 0, targets(0)),
                OutputPortSpec::network("north_ch1", Direction::North, 1, targets(1)),
                OutputPortSpec::ejection("eject", 0, 0),
            ],
            route_table: BTreeMap::from([
                (NodeId(0), vec![OutPortId(0), OutPortId(1)]),
                (NodeId(3), vec![OutPortId(2)]),
            ]),
            va_latency: 1,
            xt_latency: 1,
        }
    }

    #[test]
    fn router_state_mirrors_spec_shape() {
        let spec = replicated_router();
        let state = RouterState::from_spec(&spec);
        assert_eq!(state.inputs.len(), 3);
        assert_eq!(state.outputs.len(), 3);
        assert_eq!(state.buffered_packets(), 0);
        assert_eq!(state.node, NodeId(3));
    }

    #[test]
    fn fixed_route_wins() {
        let spec = replicated_router();
        let mut rr = 0;
        let port = InputPortSpec::injection("term", VcConfig::new(1, 4), 0)
            .with_fixed_route(OutPortId(1));
        assert_eq!(
            compute_route(&spec, &port, NodeId(0), &mut rr),
            OutPortId(1)
        );
    }

    #[test]
    fn single_candidate_is_used_directly() {
        let spec = replicated_router();
        let mut rr = 0;
        assert_eq!(
            compute_route(&spec, &spec.inputs[0], NodeId(3), &mut rr),
            OutPortId(2)
        );
        assert_eq!(rr, 0);
    }

    #[test]
    fn packets_stay_on_their_channel_when_possible() {
        let spec = replicated_router();
        let mut rr = 0;
        // Arrived on channel 1 -> keeps channel 1.
        assert_eq!(
            compute_route(&spec, &spec.inputs[2], NodeId(0), &mut rr),
            OutPortId(1)
        );
        // Arrived on channel 0 -> keeps channel 0.
        assert_eq!(
            compute_route(&spec, &spec.inputs[1], NodeId(0), &mut rr),
            OutPortId(0)
        );
    }

    #[test]
    fn injected_packets_round_robin_over_channels() {
        let spec = replicated_router();
        let mut rr = 0;
        let a = compute_route(&spec, &spec.inputs[0], NodeId(0), &mut rr);
        let b = compute_route(&spec, &spec.inputs[0], NodeId(0), &mut rr);
        let c = compute_route(&spec, &spec.inputs[0], NodeId(0), &mut rr);
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    #[should_panic(expected = "no route for destination")]
    fn missing_route_panics() {
        let spec = replicated_router();
        let mut rr = 0;
        compute_route(&spec, &spec.inputs[0], NodeId(7), &mut rr);
    }

    #[test]
    fn target_resolution_by_coverage() {
        let multi = OutputPortSpec::network(
            "mecs_south",
            Direction::South,
            0,
            vec![
                TargetSpec::covering(TargetEndpoint::Sink { sink: 0 }, 1, vec![NodeId(4)]),
                TargetSpec::covering(TargetEndpoint::Sink { sink: 1 }, 2, vec![NodeId(5), NodeId(6)]),
            ],
        );
        assert_eq!(resolve_target_idx(&multi, NodeId(4)), 0);
        assert_eq!(resolve_target_idx(&multi, NodeId(6)), 1);
        let single = OutputPortSpec::ejection("eject", 0, 0);
        assert_eq!(resolve_target_idx(&single, NodeId(9)), 0);
    }

    #[test]
    #[should_panic(expected = "no target covering")]
    fn uncovered_destination_panics() {
        let multi = OutputPortSpec::network(
            "mecs_south",
            Direction::South,
            0,
            vec![
                TargetSpec::covering(TargetEndpoint::Sink { sink: 0 }, 1, vec![NodeId(4)]),
                TargetSpec::covering(TargetEndpoint::Sink { sink: 1 }, 2, vec![NodeId(5)]),
            ],
        );
        resolve_target_idx(&multi, NodeId(6));
    }
}
