//! Classic permutation traffic patterns.
//!
//! Besides the uniform-random, tornado and hotspot workloads used in the
//! paper, the standard network-on-chip evaluation repertoire (Dally & Towles)
//! includes a family of *permutation* patterns in which every source sends
//! all of its traffic to a single, address-derived destination. They stress
//! different aspects of a topology (adversarial bisection use, locality,
//! shuffle stages) and are provided here as extensions for exploring the
//! shared-region topologies beyond the paper's figures.

use serde::{Deserialize, Serialize};
use taqos_netsim::NodeId;

/// A destination permutation over the nodes of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Permutation {
    /// `dst = (src + n/2) mod n` — the tornado pattern.
    Tornado,
    /// `dst = n - 1 - src` — bit complement on a power-of-two column.
    BitComplement,
    /// Bit-reversal of the node index (power-of-two columns only; identity
    /// otherwise).
    BitReverse,
    /// Perfect shuffle: rotate the node index left by one bit.
    Shuffle,
    /// `dst = (src + 1) mod n` — nearest-neighbour traffic.
    Neighbour,
    /// `dst = src` — self traffic (every packet ejects at its own node).
    Identity,
}

impl Permutation {
    /// All permutations, for sweeps.
    pub fn all() -> [Permutation; 6] {
        [
            Permutation::Tornado,
            Permutation::BitComplement,
            Permutation::BitReverse,
            Permutation::Shuffle,
            Permutation::Neighbour,
            Permutation::Identity,
        ]
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Permutation::Tornado => "tornado",
            Permutation::BitComplement => "bit_complement",
            Permutation::BitReverse => "bit_reverse",
            Permutation::Shuffle => "shuffle",
            Permutation::Neighbour => "neighbour",
            Permutation::Identity => "identity",
        }
    }

    /// Destination of a source node under this permutation in a column of
    /// `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not smaller than `nodes` or `nodes` is zero.
    pub fn destination(self, src: usize, nodes: usize) -> NodeId {
        assert!(nodes > 0, "a permutation needs at least one node");
        assert!(src < nodes, "source {src} outside the {nodes}-node column");
        let bits = nodes.trailing_zeros();
        let power_of_two = nodes.is_power_of_two();
        let dst = match self {
            Permutation::Tornado => (src + nodes / 2) % nodes,
            Permutation::BitComplement => nodes - 1 - src,
            Permutation::BitReverse => {
                if power_of_two && bits > 0 {
                    let mut r = 0usize;
                    for b in 0..bits {
                        if src & (1 << b) != 0 {
                            r |= 1 << (bits - 1 - b);
                        }
                    }
                    r
                } else {
                    src
                }
            }
            Permutation::Shuffle => {
                if power_of_two && bits > 0 {
                    ((src << 1) | (src >> (bits - 1))) & (nodes - 1)
                } else {
                    (src + 1) % nodes
                }
            }
            Permutation::Neighbour => (src + 1) % nodes,
            Permutation::Identity => src,
        };
        NodeId(dst as u16)
    }

    /// Average hop distance of the permutation on a line of `nodes` nodes.
    pub fn avg_hops(self, nodes: usize) -> f64 {
        if nodes == 0 {
            return 0.0;
        }
        let total: u64 = (0..nodes)
            .map(|src| {
                let dst = self.destination(src, nodes).index();
                (src as i64 - dst as i64).unsigned_abs()
            })
            .sum();
        total as f64 / nodes as f64
    }

    /// Whether the mapping is a bijection over the column (true permutations
    /// load every destination equally).
    pub fn is_bijective(self, nodes: usize) -> bool {
        let mut seen = vec![false; nodes];
        for src in 0..nodes {
            let dst = self.destination(src, nodes).index();
            if seen[dst] {
                return false;
            }
            seen[dst] = true;
        }
        seen.into_iter().all(|s| s)
    }
}

impl std::fmt::Display for Permutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tornado_matches_the_workload_definition() {
        assert_eq!(Permutation::Tornado.destination(1, 8), NodeId(5));
        assert_eq!(Permutation::Tornado.destination(5, 8), NodeId(1));
        assert_eq!(Permutation::Tornado.avg_hops(8), 4.0);
    }

    #[test]
    fn bit_complement_reflects_the_column() {
        assert_eq!(Permutation::BitComplement.destination(0, 8), NodeId(7));
        assert_eq!(Permutation::BitComplement.destination(3, 8), NodeId(4));
        assert!(Permutation::BitComplement.avg_hops(8) > 3.9);
    }

    #[test]
    fn bit_reverse_swaps_bit_order() {
        // 3 bits: 001 -> 100, 011 -> 110, 010 -> 010.
        assert_eq!(Permutation::BitReverse.destination(1, 8), NodeId(4));
        assert_eq!(Permutation::BitReverse.destination(3, 8), NodeId(6));
        assert_eq!(Permutation::BitReverse.destination(2, 8), NodeId(2));
    }

    #[test]
    fn shuffle_rotates_bits() {
        // 3 bits: 001 -> 010, 100 -> 001, 110 -> 101.
        assert_eq!(Permutation::Shuffle.destination(1, 8), NodeId(2));
        assert_eq!(Permutation::Shuffle.destination(4, 8), NodeId(1));
        assert_eq!(Permutation::Shuffle.destination(6, 8), NodeId(5));
    }

    #[test]
    fn neighbour_and_identity_have_short_distances() {
        // Seven sources travel one hop; the last node wraps around across
        // the whole column, so the average is (7*1 + 7)/8 = 1.75.
        assert_eq!(Permutation::Neighbour.avg_hops(8), 1.75);
        assert_eq!(Permutation::Identity.avg_hops(8), 0.0);
        assert!(Permutation::Neighbour.avg_hops(8) < Permutation::Tornado.avg_hops(8));
    }

    #[test]
    fn all_patterns_are_bijective_on_power_of_two_columns() {
        for p in Permutation::all() {
            assert!(p.is_bijective(8), "{p} is not a permutation on 8 nodes");
            assert!(p.is_bijective(4), "{p} is not a permutation on 4 nodes");
        }
    }

    #[test]
    fn non_power_of_two_columns_fall_back_gracefully() {
        for p in Permutation::all() {
            for src in 0..6 {
                let dst = p.destination(src, 6);
                assert!(dst.index() < 6, "{p}: destination out of range");
            }
        }
        // Neighbour-style fallbacks remain bijective even off powers of two.
        assert!(Permutation::Neighbour.is_bijective(6));
        assert!(Permutation::Tornado.is_bijective(6));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_source_panics() {
        Permutation::Tornado.destination(9, 8);
    }
}
