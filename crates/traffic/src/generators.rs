//! Packet generators: stochastic sources bound to a destination pattern.

use crate::injection::{BernoulliInjection, PacketSizeMix};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use taqos_netsim::packet::{GeneratedPacket, PacketGenerator};
use taqos_netsim::{Cycle, NodeId};

/// How a generator chooses the destination of each packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DestinationPattern {
    /// Every packet goes to the same destination (tornado, hotspot,
    /// adversarial workloads).
    Fixed(NodeId),
    /// Destinations are drawn uniformly at random from the given set.
    UniformRandom(Vec<NodeId>),
}

impl DestinationPattern {
    fn draw(&self, rng: &mut ChaCha8Rng) -> NodeId {
        use rand::Rng;
        match self {
            DestinationPattern::Fixed(dst) => *dst,
            DestinationPattern::UniformRandom(dests) => {
                assert!(!dests.is_empty(), "uniform pattern needs destinations");
                dests[rng.gen_range(0..dests.len())]
            }
        }
    }
}

/// A stochastic packet generator: a Bernoulli injection process combined with
/// a destination pattern and an optional packet budget.
///
/// With a budget the generator models the fixed (closed) workloads of the
/// preemption experiments: it reports exhaustion once the budget is spent so
/// the simulation driver can detect completion.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    injection: BernoulliInjection,
    /// Precomputed integer firing threshold: the per-cycle Bernoulli draw
    /// `gen_bool(p)` compares `(next_u64() >> 11) * 2⁻⁵³ < p`, which over the
    /// integers is exactly `(next_u64() >> 11) < ceil(p · 2⁵³)`. Storing the
    /// right-hand side turns the hottest comparison in the simulator (one
    /// per injector per cycle) into a shift and an integer compare, without
    /// changing a single draw. `None` when the rate is zero (no entropy is
    /// consumed then, matching `BernoulliInjection::fires`).
    fire_threshold: Option<u64>,
    pattern: DestinationPattern,
    budget: Option<u64>,
    generated: u64,
    rng: ChaCha8Rng,
}

fn fire_threshold(injection: &BernoulliInjection) -> Option<u64> {
    let p = injection.packet_probability();
    (p > 0.0).then(|| (p * (1u64 << 53) as f64).ceil() as u64)
}

impl SyntheticGenerator {
    /// Creates an open-loop generator (no packet budget).
    pub fn open_loop(
        rate_flits_per_cycle: f64,
        mix: PacketSizeMix,
        pattern: DestinationPattern,
        seed: u64,
    ) -> Self {
        let injection = BernoulliInjection::new(rate_flits_per_cycle, mix);
        SyntheticGenerator {
            fire_threshold: fire_threshold(&injection),
            injection,
            pattern,
            budget: None,
            generated: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Creates a closed-workload generator that stops after `budget` packets.
    pub fn with_budget(
        rate_flits_per_cycle: f64,
        mix: PacketSizeMix,
        pattern: DestinationPattern,
        budget: u64,
        seed: u64,
    ) -> Self {
        let injection = BernoulliInjection::new(rate_flits_per_cycle, mix);
        SyntheticGenerator {
            fire_threshold: fire_threshold(&injection),
            injection,
            pattern,
            budget: Some(budget),
            generated: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Target injection rate in flits per cycle.
    pub fn rate(&self) -> f64 {
        self.injection.flits_per_cycle
    }
}

impl PacketGenerator for SyntheticGenerator {
    fn generate(&mut self, _now: Cycle) -> Option<GeneratedPacket> {
        // Same draw sequence as `BernoulliInjection::fires`, with the
        // comparison precomputed as an integer threshold (see
        // `fire_threshold`; no RNG consumption at probability zero).
        use rand::RngCore;
        if self.exhausted() {
            return None;
        }
        match self.fire_threshold {
            Some(threshold) if (self.rng.next_u64() >> 11) < threshold => {}
            _ => return None,
        }
        let class = self.injection.mix.draw(&mut self.rng);
        let dst = self.pattern.draw(&mut self.rng);
        self.generated += 1;
        Some(GeneratedPacket {
            dst,
            len_flits: class.default_len_flits(),
            class,
        })
    }

    fn exhausted(&self) -> bool {
        match self.budget {
            Some(budget) => self.generated >= budget,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_pattern_targets_one_destination() {
        let mut g = SyntheticGenerator::open_loop(
            1.0,
            PacketSizeMix::requests_only(),
            DestinationPattern::Fixed(NodeId(0)),
            42,
        );
        for now in 0..100 {
            if let Some(p) = g.generate(now) {
                assert_eq!(p.dst, NodeId(0));
            }
        }
        assert!(g.generated() > 50);
        assert!(!g.exhausted());
    }

    #[test]
    fn uniform_pattern_spreads_destinations() {
        let dests: Vec<NodeId> = (0..8).map(NodeId).collect();
        let mut g = SyntheticGenerator::open_loop(
            1.0,
            PacketSizeMix::requests_only(),
            DestinationPattern::UniformRandom(dests),
            7,
        );
        let mut seen = std::collections::HashSet::new();
        for now in 0..500 {
            if let Some(p) = g.generate(now) {
                seen.insert(p.dst);
            }
        }
        assert!(seen.len() >= 7, "only {} destinations seen", seen.len());
    }

    #[test]
    fn budget_limits_generation() {
        let mut g = SyntheticGenerator::with_budget(
            1.0,
            PacketSizeMix::requests_only(),
            DestinationPattern::Fixed(NodeId(3)),
            10,
            1,
        );
        for now in 0..1_000 {
            g.generate(now);
        }
        assert_eq!(g.generated(), 10);
        assert!(g.exhausted());
        assert!(g.generate(2_000).is_none());
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let run = |seed| {
            let mut g = SyntheticGenerator::open_loop(
                0.3,
                PacketSizeMix::paper(),
                DestinationPattern::UniformRandom((0..8).map(NodeId).collect()),
                seed,
            );
            (0..1_000)
                .filter_map(|now| g.generate(now))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn rate_accessor_reports_configuration() {
        let g = SyntheticGenerator::open_loop(
            0.15,
            PacketSizeMix::paper(),
            DestinationPattern::Fixed(NodeId(0)),
            0,
        );
        assert!((g.rate() - 0.15).abs() < 1e-12);
    }
}
