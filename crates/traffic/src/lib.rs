//! # taqos-traffic — synthetic traffic generation
//!
//! Stochastic traffic generators and ready-made workloads for evaluating the
//! QOS-enabled shared region:
//!
//! * [`injection`] — Bernoulli injection processes and the request/reply
//!   packet-size mix (1- and 4-flit packets on 16-byte links);
//! * [`generators`] — per-injector packet generators combining an injection
//!   process with a destination pattern and an optional packet budget;
//! * [`workloads`] — the paper's workloads assembled for a whole column:
//!   uniform random, tornado, hotspot, and the two adversarial preemption
//!   workloads, plus their offered-demand vectors for max-min fairness
//!   analysis.
//!
//! All generators are seeded explicitly and fully deterministic.
//!
//! ## Example
//!
//! ```rust
//! use taqos_traffic::prelude::*;
//! use taqos_topology::ColumnConfig;
//!
//! let config = ColumnConfig::paper();
//! let generators = uniform_random(&config, 0.10, PacketSizeMix::paper(), 42);
//! assert_eq!(generators.len(), 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generators;
pub mod injection;
pub mod patterns;
pub mod workloads;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::generators::{DestinationPattern, SyntheticGenerator};
    pub use crate::injection::{BernoulliInjection, PacketSizeMix};
    pub use crate::patterns::Permutation;
    pub use crate::workloads::{
        hotspot, idle, packet_budget, permutation, tornado, uniform_random, workload1,
        workload1_demands, workload2, workload2_demands, GeneratorSet, WORKLOAD1_RATES,
    };
}

pub use prelude::*;
