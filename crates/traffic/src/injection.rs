//! Injection processes: when a source produces a packet and how long it is.
//!
//! The paper's synthetic workloads generate packets stochastically with two
//! sizes (single-flit requests and four-flit replies) at a configured
//! injection rate expressed in flits per cycle per injector.

use rand::Rng;
use serde::{Deserialize, Serialize};
use taqos_netsim::packet::PacketClass;

/// Mix of request (1-flit) and reply (4-flit) packets.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketSizeMix {
    /// Fraction of generated packets that are single-flit requests.
    pub request_fraction: f64,
}

impl PacketSizeMix {
    /// Creates a mix with the given request fraction.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is outside `[0, 1]`.
    pub fn new(request_fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&request_fraction),
            "request fraction must lie in [0, 1], got {request_fraction}"
        );
        PacketSizeMix { request_fraction }
    }

    /// The paper's default: an even mix of requests and replies.
    pub fn paper() -> Self {
        PacketSizeMix {
            request_fraction: 0.5,
        }
    }

    /// Only single-flit requests.
    pub fn requests_only() -> Self {
        PacketSizeMix {
            request_fraction: 1.0,
        }
    }

    /// Only four-flit replies.
    pub fn replies_only() -> Self {
        PacketSizeMix {
            request_fraction: 0.0,
        }
    }

    /// Mean packet length in flits.
    pub fn mean_len_flits(&self) -> f64 {
        let req = f64::from(PacketClass::Request.default_len_flits());
        let rep = f64::from(PacketClass::Reply.default_len_flits());
        self.request_fraction * req + (1.0 - self.request_fraction) * rep
    }

    /// Draws a packet class according to the mix.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> PacketClass {
        if rng.gen_bool(self.request_fraction.clamp(0.0, 1.0)) {
            PacketClass::Request
        } else {
            PacketClass::Reply
        }
    }
}

/// A Bernoulli injection process targeting a flit injection rate.
///
/// Each cycle the process flips a biased coin; the bias is chosen so that the
/// expected number of flits generated per cycle equals the configured rate
/// given the packet size mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BernoulliInjection {
    /// Target injection rate in flits per cycle (0.0 disables injection).
    pub flits_per_cycle: f64,
    /// Packet size mix.
    pub mix: PacketSizeMix,
}

impl BernoulliInjection {
    /// Creates a process injecting `flits_per_cycle` with the given mix.
    ///
    /// # Panics
    ///
    /// Panics if the rate is negative or not finite.
    pub fn new(flits_per_cycle: f64, mix: PacketSizeMix) -> Self {
        assert!(
            flits_per_cycle.is_finite() && flits_per_cycle >= 0.0,
            "injection rate must be non-negative and finite, got {flits_per_cycle}"
        );
        BernoulliInjection {
            flits_per_cycle,
            mix,
        }
    }

    /// Probability of generating a packet in a given cycle.
    pub fn packet_probability(&self) -> f64 {
        (self.flits_per_cycle / self.mix.mean_len_flits()).min(1.0)
    }

    /// Draws whether a packet is generated this cycle.
    pub fn fires<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let p = self.packet_probability();
        p > 0.0 && rng.gen_bool(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mean_length_interpolates_between_sizes() {
        assert_eq!(PacketSizeMix::requests_only().mean_len_flits(), 1.0);
        assert_eq!(PacketSizeMix::replies_only().mean_len_flits(), 4.0);
        assert_eq!(PacketSizeMix::paper().mean_len_flits(), 2.5);
    }

    #[test]
    fn draw_respects_extreme_mixes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(
                PacketSizeMix::requests_only().draw(&mut rng),
                PacketClass::Request
            );
            assert_eq!(
                PacketSizeMix::replies_only().draw(&mut rng),
                PacketClass::Reply
            );
        }
    }

    #[test]
    fn packet_probability_accounts_for_mean_length() {
        let inj = BernoulliInjection::new(0.10, PacketSizeMix::paper());
        assert!((inj.packet_probability() - 0.04).abs() < 1e-12);
        let inj = BernoulliInjection::new(0.10, PacketSizeMix::requests_only());
        assert!((inj.packet_probability() - 0.10).abs() < 1e-12);
    }

    #[test]
    fn empirical_rate_matches_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let inj = BernoulliInjection::new(0.2, PacketSizeMix::paper());
        let cycles = 200_000;
        let mut flits = 0u64;
        for _ in 0..cycles {
            if inj.fires(&mut rng) {
                flits += u64::from(inj.mix.draw(&mut rng).default_len_flits());
            }
        }
        let rate = flits as f64 / cycles as f64;
        assert!((rate - 0.2).abs() < 0.01, "empirical rate {rate}");
    }

    #[test]
    fn zero_rate_never_fires() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inj = BernoulliInjection::new(0.0, PacketSizeMix::paper());
        assert_eq!(inj.packet_probability(), 0.0);
        for _ in 0..100 {
            assert!(!inj.fires(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_is_rejected() {
        BernoulliInjection::new(-0.1, PacketSizeMix::paper());
    }

    #[test]
    #[should_panic(expected = "must lie in")]
    fn invalid_mix_is_rejected() {
        PacketSizeMix::new(1.5);
    }
}
