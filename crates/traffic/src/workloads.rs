//! Ready-made workloads for the shared-region column experiments.
//!
//! Each function returns one traffic generator per injector, in source order
//! (node-major, injector-minor — the order in which `taqos-topology` declares
//! the column's sources), ready to be passed to
//! [`taqos_netsim::network::Network::new`].

use crate::generators::{DestinationPattern, SyntheticGenerator};
use crate::injection::PacketSizeMix;
use taqos_netsim::closed_loop::{
    ClosedLoopSpec, PhaseChange, PhaseSchedule, PhasedWorkload, RequesterSpec,
};
use taqos_netsim::packet::{IdleGenerator, PacketGenerator};
use taqos_netsim::{FlowId, NodeId};
use taqos_topology::column::ColumnConfig;

/// Injection rates (flits per cycle) of the eight terminal injectors in
/// adversarial Workload 1: equal priorities but widely different rates,
/// ranging from 5% to 20% of link bandwidth with an average around 14%,
/// guaranteeing contention at the hotspot whose fair share is 12.5% each.
pub const WORKLOAD1_RATES: [f64; 8] = [0.05, 0.08, 0.11, 0.14, 0.16, 0.18, 0.19, 0.20];

/// Per-injector generator list; boxed trait objects in source order.
pub type GeneratorSet = Vec<Box<dyn PacketGenerator>>;

fn seed_for(base_seed: u64, flow_index: usize) -> u64 {
    // Distinct, deterministic per-injector seeds.
    base_seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(flow_index as u64)
}

/// Uniform-random traffic: every injector sends at `rate` flits/cycle to
/// destinations drawn uniformly among the other nodes of the column.
pub fn uniform_random(
    config: &ColumnConfig,
    rate: f64,
    mix: PacketSizeMix,
    seed: u64,
) -> GeneratorSet {
    let mut generators: GeneratorSet = Vec::with_capacity(config.num_flows());
    for node in 0..config.nodes {
        let dests: Vec<NodeId> = (0..config.nodes)
            .filter(|&d| d != node)
            .map(|d| NodeId(d as u16))
            .collect();
        for injector in 0..config.injectors_per_node() {
            let flow = config.flow_of(node, injector).index();
            generators.push(Box::new(SyntheticGenerator::open_loop(
                rate,
                mix,
                DestinationPattern::UniformRandom(dests.clone()),
                seed_for(seed, flow),
            )));
        }
    }
    generators
}

/// Uniform-random traffic for a network with one terminal injector per node
/// (e.g. the two-dimensional mesh built by `taqos_topology::mesh2d`): each of
/// the `nodes` injectors sends at `rate` flits/cycle to destinations drawn
/// uniformly among the other nodes.
pub fn uniform_random_terminals(
    nodes: usize,
    rate: f64,
    mix: PacketSizeMix,
    seed: u64,
) -> GeneratorSet {
    (0..nodes)
        .map(|node| {
            let dests: Vec<NodeId> = (0..nodes)
                .filter(|&d| d != node)
                .map(|d| NodeId(d as u16))
                .collect();
            Box::new(SyntheticGenerator::open_loop(
                rate,
                mix,
                DestinationPattern::UniformRandom(dests),
                seed_for(seed, node),
            )) as Box<dyn PacketGenerator>
        })
        .collect()
}

/// Tornado traffic: every injector at node `i` sends to node
/// `(i + n/2) mod n`, the challenge pattern for rings and meshes.
pub fn tornado(config: &ColumnConfig, rate: f64, mix: PacketSizeMix, seed: u64) -> GeneratorSet {
    permutation(
        config,
        crate::patterns::Permutation::Tornado,
        rate,
        mix,
        seed,
    )
}

/// Permutation traffic: every injector at node `i` sends to the node given by
/// the permutation (tornado, bit complement, bit reverse, shuffle,
/// neighbour, ...).
pub fn permutation(
    config: &ColumnConfig,
    pattern: crate::patterns::Permutation,
    rate: f64,
    mix: PacketSizeMix,
    seed: u64,
) -> GeneratorSet {
    let n = config.nodes;
    let mut generators: GeneratorSet = Vec::with_capacity(config.num_flows());
    for node in 0..n {
        let dst = pattern.destination(node, n);
        for injector in 0..config.injectors_per_node() {
            let flow = config.flow_of(node, injector).index();
            generators.push(Box::new(SyntheticGenerator::open_loop(
                rate,
                mix,
                DestinationPattern::Fixed(dst),
                seed_for(seed, flow),
            )));
        }
    }
    generators
}

/// Hotspot traffic: every injector (including the injectors of the hotspot
/// node itself) streams to the terminal of `hotspot`. Used for the fairness
/// experiment of Table 2.
pub fn hotspot(
    config: &ColumnConfig,
    rate: f64,
    mix: PacketSizeMix,
    hotspot: NodeId,
    seed: u64,
) -> GeneratorSet {
    let mut generators: GeneratorSet = Vec::with_capacity(config.num_flows());
    for node in 0..config.nodes {
        for injector in 0..config.injectors_per_node() {
            let flow = config.flow_of(node, injector).index();
            generators.push(Box::new(SyntheticGenerator::open_loop(
                rate,
                mix,
                DestinationPattern::Fixed(hotspot),
                seed_for(seed, flow),
            )));
        }
    }
    generators
}

/// Adversarial Workload 1: only the terminal injector of each node sends
/// towards the hotspot, at the widely different rates of [`WORKLOAD1_RATES`];
/// every source has a fixed packet budget so the workload has a completion
/// time (used for the slowdown measurement of Figure 6).
///
/// `budget_cycles` sets how much traffic each source offers: a source with
/// rate `r` sends `r * budget_cycles` flits worth of packets.
///
/// # Panics
///
/// Panics if `rates` does not provide one rate per node.
pub fn workload1(
    config: &ColumnConfig,
    rates: &[f64],
    mix: PacketSizeMix,
    hotspot: NodeId,
    budget_cycles: u64,
    seed: u64,
) -> GeneratorSet {
    assert_eq!(
        rates.len(),
        config.nodes,
        "workload 1 needs one rate per node"
    );
    let mut generators: GeneratorSet = Vec::with_capacity(config.num_flows());
    for (node, &rate) in rates.iter().enumerate().take(config.nodes) {
        for injector in 0..config.injectors_per_node() {
            let flow = config.flow_of(node, injector).index();
            if injector == 0 {
                let budget = packet_budget(rate, mix, budget_cycles);
                generators.push(Box::new(SyntheticGenerator::with_budget(
                    rate,
                    mix,
                    DestinationPattern::Fixed(hotspot),
                    budget,
                    seed_for(seed, flow),
                )));
            } else {
                generators.push(Box::new(IdleGenerator));
            }
        }
    }
    generators
}

/// Adversarial Workload 2: all eight injectors of the node farthest from the
/// hotspot plus one additional injector at the adjacent node send towards the
/// hotspot, pressuring a single downstream MECS port and the destination
/// output port.
pub fn workload2(
    config: &ColumnConfig,
    rate: f64,
    mix: PacketSizeMix,
    hotspot: NodeId,
    budget_cycles: u64,
    seed: u64,
) -> GeneratorSet {
    let far_node = if hotspot.index() == 0 {
        config.nodes - 1
    } else {
        0
    };
    let adjacent = if far_node > 0 { far_node - 1 } else { 1 };
    let budget = packet_budget(rate, mix, budget_cycles);
    let mut generators: GeneratorSet = Vec::with_capacity(config.num_flows());
    for node in 0..config.nodes {
        for injector in 0..config.injectors_per_node() {
            let flow = config.flow_of(node, injector).index();
            let active = node == far_node || (node == adjacent && injector == 0);
            if active {
                generators.push(Box::new(SyntheticGenerator::with_budget(
                    rate,
                    mix,
                    DestinationPattern::Fixed(hotspot),
                    budget,
                    seed_for(seed, flow),
                )));
            } else {
                generators.push(Box::new(IdleGenerator));
            }
        }
    }
    generators
}

/// Per-node traffic plan for chip-scale workloads: node `i` either stays
/// idle (`None`) or streams at the given rate (flits/cycle) to a fixed
/// destination — e.g. a domain node sending memory requests to its memory
/// controller in a shared column.
pub type NodePlan = Vec<Option<(f64, NodeId)>>;

/// Open-loop chip workload from a per-node plan: one generator per node, in
/// node order (the source order of the chip and mesh topologies).
pub fn per_node_fixed(plan: &NodePlan, mix: PacketSizeMix, seed: u64) -> GeneratorSet {
    plan.iter()
        .enumerate()
        .map(|(node, entry)| match entry {
            Some((rate, dst)) => Box::new(SyntheticGenerator::open_loop(
                *rate,
                mix,
                DestinationPattern::Fixed(*dst),
                seed_for(seed, node),
            )) as Box<dyn PacketGenerator>,
            None => Box::new(IdleGenerator) as Box<dyn PacketGenerator>,
        })
        .collect()
}

/// Closed chip workload from a per-node plan: each active node offers
/// `rate * budget_cycles` flits worth of packets, then stops, so the run has
/// a completion time.
pub fn per_node_fixed_budget(
    plan: &NodePlan,
    mix: PacketSizeMix,
    budget_cycles: u64,
    seed: u64,
) -> GeneratorSet {
    plan.iter()
        .enumerate()
        .map(|(node, entry)| match entry {
            Some((rate, dst)) => Box::new(SyntheticGenerator::with_budget(
                *rate,
                mix,
                DestinationPattern::Fixed(*dst),
                packet_budget(*rate, mix, budget_cycles),
                seed_for(seed, node),
            )) as Box<dyn PacketGenerator>,
            None => Box::new(IdleGenerator) as Box<dyn PacketGenerator>,
        })
        .collect()
}

/// Per-node closed-loop plan for chip-scale memory workloads: node `i`
/// either stays idle (`None`) or runs an MLP-limited request/reply loop
/// against a fixed memory controller — `(mlp, mc)` is the node's
/// outstanding-miss budget and its controller. The injection rate is not a
/// parameter: a closed-loop source is self-limited by its window and the
/// round-trip time.
pub type MlpPlan = Vec<Option<(usize, NodeId)>>;

/// Builds the closed-loop spec of an [`MlpPlan`] with the paper's packet mix
/// (single-flit requests, four-flit cache-line replies) and no request
/// budget, for networks with one terminal injector per node whose flow ids
/// equal node ids (the mesh and chip topologies).
pub fn mlp_closed_loop(plan: &MlpPlan) -> ClosedLoopSpec {
    plan.iter().enumerate().fold(
        ClosedLoopSpec::new(plan.len()),
        |spec, (node, entry)| match entry {
            Some((mlp, mc)) => {
                spec.with_requester(FlowId(node as u16), RequesterSpec::paper(*mc, *mlp))
            }
            None => spec,
        },
    )
}

/// Like [`mlp_closed_loop`], but every requester stops after `total`
/// requests, so the run has a completion time (for `run_closed`-style
/// drivers and flit-conservation checks).
pub fn mlp_closed_loop_bounded(plan: &MlpPlan, total: u64) -> ClosedLoopSpec {
    plan.iter().enumerate().fold(
        ClosedLoopSpec::new(plan.len()),
        |spec, (node, entry)| match entry {
            Some((mlp, mc)) => spec.with_requester(
                FlowId(node as u16),
                RequesterSpec::paper(*mc, *mlp).with_total(total),
            ),
            None => spec,
        },
    )
}

/// One idle generator per node, for closed-loop runs where every packet is
/// produced by the MLP loop (requests) or the controllers (replies) rather
/// than a stochastic generator.
pub fn idle_terminals(nodes: usize) -> GeneratorSet {
    (0..nodes)
        .map(|_| Box::new(IdleGenerator) as Box<dyn PacketGenerator>)
        .collect()
}

/// An entirely idle generator set (useful for tests and as a template).
pub fn idle(config: &ColumnConfig) -> GeneratorSet {
    (0..config.num_flows())
        .map(|_| Box::new(IdleGenerator) as Box<dyn PacketGenerator>)
        .collect()
}

/// Number of packets a source offers when sending `rate` flits per cycle for
/// `budget_cycles` cycles with the given size mix.
pub fn packet_budget(rate: f64, mix: PacketSizeMix, budget_cycles: u64) -> u64 {
    ((rate * budget_cycles as f64) / mix.mean_len_flits())
        .round()
        .max(1.0) as u64
}

/// Stateless seeded hash (splitmix64) used to derive deterministic per-flow
/// phase offsets, so bursty flows are mutually de-synchronised without any
/// runtime randomness.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bursty on/off phase schedule for one flow: `burst_mlp`-deep bursts of
/// `on_len` cycles every `period` cycles, off (window 0) in between, up to
/// `horizon`. The burst offset within the period is a seeded per-flow hash,
/// so a population of hogs built from one seed attacks out of phase. The
/// flow starts *off* (unless its first burst begins at cycle 0) — give the
/// requester spec any non-zero static window; the schedule overrides it from
/// the first cycle.
pub fn bursty_schedule(
    flow: FlowId,
    burst_mlp: usize,
    period: u64,
    on_len: u64,
    horizon: u64,
    seed: u64,
) -> PhaseSchedule {
    assert!(period > 0, "burst period must be non-zero");
    assert!(
        on_len > 0 && on_len < period,
        "burst length must be non-zero and shorter than the period"
    );
    let offset = splitmix64(seed ^ ((flow.index() as u64) << 17)) % period;
    let mut changes = Vec::new();
    if offset > 0 {
        changes.push(PhaseChange { at: 0, mlp: 0 });
    }
    let mut start = offset;
    while start < horizon {
        changes.push(PhaseChange {
            at: start,
            mlp: burst_mlp,
        });
        changes.push(PhaseChange {
            at: start + on_len,
            mlp: 0,
        });
        start += period;
    }
    PhaseSchedule::new(changes)
}

/// A phased workload of bursty on/off hogs: every flow in `hogs` gets a
/// [`bursty_schedule`] with the shared period/length/seed (per-flow offsets
/// de-synchronise them); all other flows stay static.
pub fn bursty_hogs(
    num_flows: usize,
    hogs: &[FlowId],
    burst_mlp: usize,
    period: u64,
    on_len: u64,
    horizon: u64,
    seed: u64,
) -> PhasedWorkload {
    hogs.iter().fold(PhasedWorkload::new(num_flows), |w, &f| {
        w.with_schedule(
            f,
            bursty_schedule(f, burst_mlp, period, on_len, horizon, seed),
        )
    })
}

/// A trace-shaped phased workload from an explicit change list of
/// `(flow, cycle, mlp)` triples (each flow's cycles strictly increasing, as
/// a demand trace replay would produce them).
pub fn trace_phases(num_flows: usize, changes: &[(FlowId, u64, usize)]) -> PhasedWorkload {
    let mut workload = PhasedWorkload::new(num_flows);
    for &(flow, at, mlp) in changes {
        workload.schedules[flow.index()]
            .changes
            .push(PhaseChange { at, mlp });
    }
    workload
}

/// Demands (flits per cycle) offered by each flow of a generator set built by
/// [`workload1`]; used to compute the max-min fair reference allocation.
pub fn workload1_demands(config: &ColumnConfig, rates: &[f64]) -> Vec<f64> {
    let mut demands = vec![0.0; config.num_flows()];
    for node in 0..config.nodes {
        demands[config.flow_of(node, 0).index()] = rates[node];
    }
    demands
}

/// Demands (flits per cycle) offered by each flow of a generator set built by
/// [`workload2`].
pub fn workload2_demands(config: &ColumnConfig, rate: f64, hotspot: NodeId) -> Vec<f64> {
    let far_node = if hotspot.index() == 0 {
        config.nodes - 1
    } else {
        0
    };
    let adjacent = if far_node > 0 { far_node - 1 } else { 1 };
    let mut demands = vec![0.0; config.num_flows()];
    for injector in 0..config.injectors_per_node() {
        demands[config.flow_of(far_node, injector).index()] = rate;
    }
    demands[config.flow_of(adjacent, 0).index()] = rate;
    demands
}

#[cfg(test)]
mod tests {
    use super::*;
    use taqos_netsim::closed_loop::DramConfig;
    use taqos_netsim::Cycle;

    fn count_active(generators: &mut GeneratorSet, cycles: Cycle) -> Vec<u64> {
        generators
            .iter_mut()
            .map(|g| (0..cycles).filter(|&now| g.generate(now).is_some()).count() as u64)
            .collect()
    }

    #[test]
    fn bursty_schedules_are_deterministic_offset_and_strictly_increasing() {
        let a = bursty_schedule(FlowId(3), 8, 1_000, 250, 10_000, 42);
        let b = bursty_schedule(FlowId(3), 8, 1_000, 250, 10_000, 42);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(!a.is_empty());
        assert!(a.changes.windows(2).all(|w| w[0].at < w[1].at));
        // On/off changes alternate between the burst window and zero.
        assert!(a.changes.iter().all(|c| c.mlp == 0 || c.mlp == 8));
        assert!(a.changes.iter().any(|c| c.mlp == 8));
        // A different flow of the same seed bursts at a different offset.
        let other = bursty_schedule(FlowId(4), 8, 1_000, 250, 10_000, 42);
        assert_ne!(
            a.changes.iter().find(|c| c.mlp == 8).map(|c| c.at),
            other.changes.iter().find(|c| c.mlp == 8).map(|c| c.at),
        );
    }

    #[test]
    fn bursty_hogs_and_trace_phases_touch_only_named_flows() {
        let hogs = bursty_hogs(8, &[FlowId(1), FlowId(5)], 4, 500, 100, 5_000, 7);
        assert_eq!(hogs.schedules.len(), 8);
        assert!(!hogs.schedules[1].is_empty());
        assert!(!hogs.schedules[5].is_empty());
        assert!(hogs.schedules[0].is_empty());
        assert!(!hogs.is_static());
        let trace = trace_phases(4, &[(FlowId(2), 100, 0), (FlowId(2), 900, 6)]);
        assert_eq!(
            trace.schedules[2].changes,
            vec![
                PhaseChange { at: 100, mlp: 0 },
                PhaseChange { at: 900, mlp: 6 }
            ]
        );
        assert!(trace.schedules[0].is_empty());
    }

    #[test]
    fn all_workloads_cover_every_injector() {
        let config = ColumnConfig::paper();
        assert_eq!(
            uniform_random(&config, 0.1, PacketSizeMix::paper(), 1).len(),
            64
        );
        assert_eq!(tornado(&config, 0.1, PacketSizeMix::paper(), 1).len(), 64);
        assert_eq!(
            hotspot(&config, 0.1, PacketSizeMix::paper(), NodeId(0), 1).len(),
            64
        );
        assert_eq!(
            workload1(
                &config,
                &WORKLOAD1_RATES,
                PacketSizeMix::paper(),
                NodeId(0),
                10_000,
                1
            )
            .len(),
            64
        );
        assert_eq!(
            workload2(&config, 0.14, PacketSizeMix::paper(), NodeId(0), 10_000, 1).len(),
            64
        );
        assert_eq!(idle(&config).len(), 64);
    }

    #[test]
    fn workload1_activates_only_terminals() {
        let config = ColumnConfig::paper();
        let mut generators = workload1(
            &config,
            &WORKLOAD1_RATES,
            PacketSizeMix::requests_only(),
            NodeId(0),
            5_000,
            3,
        );
        let counts = count_active(&mut generators, 2_000);
        for node in 0..config.nodes {
            for injector in 0..config.injectors_per_node() {
                let flow = config.flow_of(node, injector).index();
                if injector == 0 {
                    assert!(counts[flow] > 0, "terminal of node {node} should send");
                } else {
                    assert_eq!(counts[flow], 0, "row injector {injector} of node {node}");
                }
            }
        }
    }

    #[test]
    fn workload2_activates_far_node_and_one_neighbour() {
        let config = ColumnConfig::paper();
        let mut generators = workload2(
            &config,
            0.5,
            PacketSizeMix::requests_only(),
            NodeId(0),
            5_000,
            3,
        );
        let counts = count_active(&mut generators, 2_000);
        let active: Vec<usize> = counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        // All eight injectors of node 7 plus the terminal of node 6.
        assert_eq!(active.len(), 9);
        for injector in 0..8 {
            assert!(active.contains(&config.flow_of(7, injector).index()));
        }
        assert!(active.contains(&config.flow_of(6, 0).index()));
    }

    #[test]
    fn tornado_targets_opposite_half() {
        let config = ColumnConfig::paper();
        let mut generators = tornado(&config, 1.0, PacketSizeMix::requests_only(), 9);
        let g = &mut generators[config.flow_of(1, 0).index()];
        let mut found = None;
        for now in 0..100 {
            if let Some(p) = g.generate(now) {
                found = Some(p.dst);
                break;
            }
        }
        assert_eq!(found, Some(NodeId(5)));
    }

    #[test]
    fn uniform_random_excludes_self() {
        let config = ColumnConfig::paper();
        let mut generators = uniform_random(&config, 1.0, PacketSizeMix::requests_only(), 11);
        let node = 4;
        let g = &mut generators[config.flow_of(node, 2).index()];
        for now in 0..500 {
            if let Some(p) = g.generate(now) {
                assert_ne!(p.dst, NodeId(node as u16));
            }
        }
    }

    #[test]
    fn per_node_plans_activate_exactly_the_planned_nodes() {
        let plan: NodePlan = vec![Some((1.0, NodeId(9))), None, Some((1.0, NodeId(9))), None];
        let mut open = per_node_fixed(&plan, PacketSizeMix::requests_only(), 3);
        assert_eq!(open.len(), 4);
        let counts = count_active(&mut open, 500);
        assert!(counts[0] > 0 && counts[2] > 0);
        assert_eq!(counts[1], 0);
        assert_eq!(counts[3], 0);

        let mut closed = per_node_fixed_budget(&plan, PacketSizeMix::requests_only(), 100, 3);
        let counts = count_active(&mut closed, 5_000);
        assert_eq!(counts[0], 100, "budgeted generator stops at its budget");
        assert!(closed[0].exhausted());
        assert!(
            closed[1].exhausted(),
            "idle generators are always exhausted"
        );
    }

    #[test]
    fn mlp_plans_build_matching_closed_loop_specs() {
        let plan: MlpPlan = vec![Some((4, NodeId(2))), None, None, Some((16, NodeId(2)))];
        let spec = mlp_closed_loop(&plan);
        assert_eq!(spec.requesters.len(), 4);
        assert_eq!(spec.active_requesters(), 2);
        let r = spec.requesters[0].expect("node 0 is a requester");
        assert_eq!(r.mlp, 4);
        assert_eq!(r.mc, NodeId(2));
        assert_eq!(r.request_len, 1);
        assert_eq!(r.reply_len, 4);
        assert!(r.total.is_none());
        assert!(spec.requesters[1].is_none());

        let bounded = mlp_closed_loop_bounded(&plan, 250);
        assert_eq!(bounded.requesters[3].unwrap().total, Some(250));
        assert!(bounded.dram.is_none(), "no DRAM model unless requested");

        // A DRAM model rides along via the spec's builder.
        let dram = mlp_closed_loop(&plan).with_dram(DramConfig::paper().with_banks(4));
        assert_eq!(dram.dram.expect("DRAM model installed").banks, 4);
        assert_eq!(dram.active_requesters(), 2);

        let idle = idle_terminals(4);
        assert_eq!(idle.len(), 4);
        assert!(idle.iter().all(|g| g.exhausted()));
    }

    #[test]
    fn budgets_scale_with_rate_and_mix() {
        assert_eq!(
            packet_budget(0.1, PacketSizeMix::requests_only(), 10_000),
            1_000
        );
        assert_eq!(packet_budget(0.1, PacketSizeMix::paper(), 10_000), 400);
        assert_eq!(packet_budget(0.0001, PacketSizeMix::paper(), 100), 1);
    }

    #[test]
    fn demand_vectors_match_active_sources() {
        let config = ColumnConfig::paper();
        let d1 = workload1_demands(&config, &WORKLOAD1_RATES);
        assert_eq!(d1.iter().filter(|&&d| d > 0.0).count(), 8);
        assert!((d1.iter().sum::<f64>() - WORKLOAD1_RATES.iter().sum::<f64>()).abs() < 1e-12);

        let d2 = workload2_demands(&config, 0.14, NodeId(0));
        assert_eq!(d2.iter().filter(|&&d| d > 0.0).count(), 9);
    }

    #[test]
    fn workload1_average_rate_is_near_14_percent() {
        let avg: f64 = WORKLOAD1_RATES.iter().sum::<f64>() / WORKLOAD1_RATES.len() as f64;
        assert!(avg > 0.125 && avg < 0.15, "average {avg}");
    }
}
