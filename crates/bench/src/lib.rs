//! # taqos-bench — benchmark harness for the paper's tables and figures
//!
//! One binary per table/figure regenerates the corresponding rows or series:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1`          | Table 1 — simulated configurations |
//! | `fig3_area`       | Figure 3 — router area overhead |
//! | `fig4_latency`    | Figure 4 — latency/throughput on uniform random & tornado |
//! | `table2_fairness` | Table 2 — relative throughput under the hotspot |
//! | `fig5_preemption` | Figure 5 — preempted packets & replayed hops |
//! | `fig6_slowdown`   | Figure 6 — slowdown & throughput deviation |
//! | `fig7_energy`     | Figure 7 — router energy per flit by hop type |
//! | `sla`             | Differentiated service — delivered vs programmed shares |
//! | `ablations`       | PVC parameter ablations |
//! | `chip_scale`      | Chip-scale experiments — isolation, latency under load, MLP-mix divergence, column scaling, QOS area |
//!
//! Every binary accepts `--quick` to run a shortened configuration (smaller
//! warm-up and measurement windows) and prints plain-text tables to stdout.
//! The plain-timing benches (`router_bench`, `experiment_bench`; built with
//! `harness = false` via [`measure`]) track the simulator's own performance,
//! and the `bench_netsim` binary measures engine throughput (cycles/sec)
//! against the seed-equivalent reference engine, writing `BENCH_netsim.json`.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Minimal command-line option parser for the harness binaries: recognises
/// `--flag` switches and `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    flags: Vec<String>,
    values: BTreeMap<String, String>,
}

impl CliArgs {
    /// Parses the given iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = CliArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                continue;
            };
            let takes_value = iter
                .peek()
                .map(|next| !next.starts_with("--"))
                .unwrap_or(false);
            if takes_value {
                let value = iter.next().expect("peeked value exists");
                parsed.values.insert(name.to_string(), value);
            } else {
                parsed.flags.push(name.to_string());
            }
        }
        parsed
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether `--name` was passed as a switch.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name value` parsed as the requested type, or the
    /// provided default.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Formats a floating point value with a fixed number of decimals, right
/// aligned in a column of the given width.
pub fn cell(value: f64, width: usize, decimals: usize) -> String {
    format!("{value:>width$.decimals$}")
}

/// Timing statistics of one benchmark case measured by [`measure`].
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Number of timed samples.
    pub samples: usize,
    /// Mean wall time per sample in seconds.
    pub mean_secs: f64,
    /// Fastest sample in seconds (the least noisy figure on a busy machine).
    pub min_secs: f64,
}

/// Runs `f` for `samples` timed iterations (after one untimed warm-up call)
/// and returns mean and minimum wall time. This replaces the Criterion
/// harness, which is unavailable in the offline build environment; the bench
/// targets are compiled with `harness = false` and print these figures
/// directly.
pub fn measure<F: FnMut()>(samples: usize, mut f: F) -> Measurement {
    assert!(samples > 0, "at least one sample required");
    f();
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..samples {
        let start = std::time::Instant::now();
        f();
        let elapsed = start.elapsed().as_secs_f64();
        total += elapsed;
        min = min.min(elapsed);
    }
    Measurement {
        samples,
        mean_secs: total / samples as f64,
        min_secs: min,
    }
}

/// Prints one benchmark result line in a fixed-width layout.
pub fn report(group: &str, case: &str, m: Measurement) {
    println!(
        "{group:<36} {case:<12} mean {:>10.3} ms   min {:>10.3} ms   ({} samples)",
        m.mean_secs * 1e3,
        m.min_secs * 1e3,
        m.samples
    );
}

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CliArgs {
        CliArgs::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_values() {
        let a = args(&["--quick", "--pattern", "tornado", "--workload", "2"]);
        assert!(a.has_flag("quick"));
        assert!(!a.has_flag("slow"));
        assert_eq!(a.value("pattern"), Some("tornado"));
        assert_eq!(a.value_or("workload", 1u32), 2);
        assert_eq!(a.value_or("missing", 7u32), 7);
    }

    #[test]
    fn trailing_flag_is_not_a_value() {
        let a = args(&["--pattern", "--quick"]);
        assert!(a.has_flag("pattern"));
        assert!(a.has_flag("quick"));
        assert_eq!(a.value("pattern"), None);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(cell(3.456, 8, 2), "    3.46");
        assert_eq!(rule(4), "----");
    }
}
