//! # taqos-bench — benchmark harness for the paper's tables and figures
//!
//! One binary per table/figure regenerates the corresponding rows or series:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1`          | Table 1 — simulated configurations |
//! | `fig3_area`       | Figure 3 — router area overhead |
//! | `fig4_latency`    | Figure 4 — latency/throughput on uniform random & tornado |
//! | `table2_fairness` | Table 2 — relative throughput under the hotspot |
//! | `fig5_preemption` | Figure 5 — preempted packets & replayed hops |
//! | `fig6_slowdown`   | Figure 6 — slowdown & throughput deviation |
//! | `fig7_energy`     | Figure 7 — router energy per flit by hop type |
//!
//! Every binary accepts `--quick` to run a shortened configuration (smaller
//! warm-up and measurement windows) and prints plain-text tables to stdout.
//! The Criterion benches (`router_bench`, `experiment_bench`) measure the
//! simulator's own performance.

#![warn(missing_docs)]

use std::collections::BTreeMap;

/// Minimal command-line option parser for the harness binaries: recognises
/// `--flag` switches and `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct CliArgs {
    flags: Vec<String>,
    values: BTreeMap<String, String>,
}

impl CliArgs {
    /// Parses the given iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut parsed = CliArgs::default();
        let mut iter = args.into_iter().peekable();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                continue;
            };
            let takes_value = iter
                .peek()
                .map(|next| !next.starts_with("--"))
                .unwrap_or(false);
            if takes_value {
                let value = iter.next().expect("peeked value exists");
                parsed.values.insert(name.to_string(), value);
            } else {
                parsed.flags.push(name.to_string());
            }
        }
        parsed
    }

    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Whether `--name` was passed as a switch.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The value of `--name value`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// The value of `--name value` parsed as the requested type, or the
    /// provided default.
    pub fn value_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Formats a floating point value with a fixed number of decimals, right
/// aligned in a column of the given width.
pub fn cell(value: f64, width: usize, decimals: usize) -> String {
    format!("{value:>width$.decimals$}")
}

/// Prints a horizontal rule of the given width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> CliArgs {
        CliArgs::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_values() {
        let a = args(&["--quick", "--pattern", "tornado", "--workload", "2"]);
        assert!(a.has_flag("quick"));
        assert!(!a.has_flag("slow"));
        assert_eq!(a.value("pattern"), Some("tornado"));
        assert_eq!(a.value_or("workload", 1u32), 2);
        assert_eq!(a.value_or("missing", 7u32), 7);
    }

    #[test]
    fn trailing_flag_is_not_a_value() {
        let a = args(&["--pattern", "--quick"]);
        assert!(a.has_flag("pattern"));
        assert!(a.has_flag("quick"));
        assert_eq!(a.value("pattern"), None);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(cell(3.14159, 8, 2), "    3.14");
        assert_eq!(rule(4), "----");
    }
}
