//! Regenerates Figure 6: slowdown relative to preemption-free per-flow
//! queuing and deviation from the max-min-fair expected throughput, for the
//! two adversarial workloads.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p taqos-bench --bin fig6_slowdown -- [--workload 1|2] [--quick]
//! ```

use taqos_bench::{cell, rule, CliArgs};
use taqos_core::experiment::preemption::{
    preemption_figure, AdversarialConfig, AdversarialWorkload,
};

fn main() {
    let args = CliArgs::from_env();
    let workload = match args.value_or("workload", 1u32) {
        2 => AdversarialWorkload::Workload2,
        _ => AdversarialWorkload::Workload1,
    };
    let config = if args.has_flag("quick") {
        AdversarialConfig::quick()
    } else {
        AdversarialConfig::default()
    };

    eprintln!(
        "running {} on 5 topologies (PVC + per-flow-queued baseline)",
        workload.name()
    );
    let results = preemption_figure(workload, &config).expect("adversarial workloads complete");

    println!(
        "Figure 6{}: slowdown due to preemptions and deviation from expected throughput ({})",
        match workload {
            AdversarialWorkload::Workload1 => "(a)",
            AdversarialWorkload::Workload2 => "(b)",
        },
        workload.name()
    );
    println!("{}", rule(92));
    println!(
        "{:<10} {:>14} {:>16} {:>16} {:>16} {:>14}",
        "topology",
        "slowdown %",
        "avg deviation %",
        "min deviation %",
        "max deviation %",
        "completion"
    );
    println!("{}", rule(92));
    for result in &results {
        println!(
            "{:<10} {} {} {} {} {:>14}",
            result.topology.name(),
            cell(result.slowdown * 100.0, 14, 2),
            cell(result.avg_deviation * 100.0, 16, 2),
            cell(result.min_deviation * 100.0, 16, 2),
            cell(result.max_deviation * 100.0, 16, 2),
            result.completion_cycles,
        );
    }
    println!("{}", rule(92));
    println!("slowdown is measured against preemption-free execution in the same topology");
    println!("with ideal per-flow queuing; deviations are per-source extremes across the");
    println!("active flows relative to their max-min fair share.");
}
