//! Regenerates Figure 4: average packet latency versus offered load on
//! uniform-random and tornado traffic, for all five topologies.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p taqos-bench --bin fig4_latency -- [--pattern uniform|tornado]
//!     [--quick] [--max-rate 15] [--discards]
//! ```
//!
//! `--discards` additionally prints the packet discard (preemption) rate at
//! the highest simulated load, reproducing the saturation discard figures
//! quoted in Section 5.2 of the paper.

use taqos_bench::{cell, rule, CliArgs};
use taqos_core::experiment::latency::{latency_sweep, SweepConfig, SweepPattern};
use taqos_netsim::sim::OpenLoopConfig;
use taqos_topology::column::ColumnTopology;

fn main() {
    let args = CliArgs::from_env();
    let pattern = match args.value("pattern").unwrap_or("uniform") {
        "tornado" => SweepPattern::Tornado,
        _ => SweepPattern::UniformRandom,
    };
    let max_rate_pct: u32 = args.value_or("max-rate", 15);
    let quick = args.has_flag("quick");

    let mut config = SweepConfig::default();
    if quick {
        config.open_loop = OpenLoopConfig {
            warmup: 2_000,
            measure: 10_000,
            drain: 3_000,
        };
    }
    let rates: Vec<f64> = (1..=max_rate_pct).map(|p| f64::from(p) / 100.0).collect();
    let topologies = ColumnTopology::all();

    eprintln!(
        "running {} sweep: {} topologies x {} load points ({} cycles each){}",
        pattern.name(),
        topologies.len(),
        rates.len(),
        config.open_loop.total_cycles(),
        if quick { " [quick]" } else { "" }
    );
    let points = latency_sweep(pattern, &topologies, &rates, &config);

    println!(
        "Figure 4{}: average packet latency (cycles) vs injection rate, {} traffic",
        match pattern {
            SweepPattern::UniformRandom => "(a)",
            SweepPattern::Tornado => "(b)",
        },
        pattern.name()
    );
    println!("{}", rule(80));
    print!("{:<10}", "rate");
    for topology in topologies {
        print!("{:>14}", topology.name());
    }
    println!();
    println!("{}", rule(80));
    for &rate in &rates {
        print!("{:<10}", format!("{:.0}%", rate * 100.0));
        for topology in topologies {
            let point = points
                .iter()
                .find(|p| p.topology == topology && (p.injection_rate - rate).abs() < 1e-9)
                .expect("point simulated");
            print!("{}", cell(point.avg_latency, 14, 1));
        }
        println!();
    }
    println!("{}", rule(80));

    println!("Accepted throughput at the highest load (flits/cycle, whole column):");
    for topology in topologies {
        let point = points
            .iter()
            .rfind(|p| p.topology == topology)
            .expect("points exist");
        println!(
            "  {:<10} {}",
            topology.name(),
            cell(point.accepted_flits_per_cycle, 8, 2)
        );
    }

    if args.has_flag("discards") {
        println!("Packet discard (preemption) rate at the highest load:");
        for topology in topologies {
            let point = points
                .iter()
                .rfind(|p| p.topology == topology)
                .expect("points exist");
            println!(
                "  {:<10} {} %",
                topology.name(),
                cell(point.preempted_packet_fraction * 100.0, 7, 2)
            );
        }
    }
}
