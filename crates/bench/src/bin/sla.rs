//! Differentiated-service harness: drives the shared column with hotspot
//! traffic from tenants of different service weights and reports how
//! closely the delivered bandwidth tracks the programmed proportions
//! (`taqos_core::experiment::differentiated::sla_experiment`).
//!
//! ```text
//! cargo run --release -p taqos-bench --bin sla
//! cargo run --release -p taqos-bench --bin sla -- --quick
//! ```

use taqos_bench::{cell, rule, CliArgs};
use taqos_core::experiment::differentiated::{sla_experiment, SlaConfig};
use taqos_topology::column::ColumnTopology;

fn main() {
    let args = CliArgs::from_env();
    let config = if args.has_flag("quick") {
        SlaConfig::quick()
    } else {
        SlaConfig::default()
    };
    println!(
        "differentiated service: weights {:?}, hotspot node {}, rate {}",
        config.node_weights, config.hotspot, config.rate
    );
    println!("{}", rule(72));
    println!(
        "{:<10} {:>22} {:>22} {:>14}",
        "topology", "programmed shares", "delivered shares", "worst error"
    );
    println!("{}", rule(72));
    for topology in ColumnTopology::all() {
        let result = sla_experiment(topology, &config);
        let fmt = |shares: Vec<f64>| {
            shares
                .iter()
                .map(|s| format!("{:.2}", s))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "{:<10} {:>22} {:>22} {:>13}%",
            topology.name(),
            fmt(result.programmed_shares()),
            fmt(result.delivered_shares()),
            cell(100.0 * result.worst_share_error, 13, 1),
        );
    }
    println!("{}", rule(72));
}
