//! Regenerates Figure 5: the fraction of packets that experience a
//! preemption and the fraction of hop traversals wasted, for the two
//! adversarial workloads.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p taqos-bench --bin fig5_preemption -- [--workload 1|2] [--quick]
//! ```

use taqos_bench::{cell, rule, CliArgs};
use taqos_core::experiment::preemption::{
    preemption_figure, AdversarialConfig, AdversarialWorkload,
};

fn main() {
    let args = CliArgs::from_env();
    let workload = match args.value_or("workload", 1u32) {
        2 => AdversarialWorkload::Workload2,
        _ => AdversarialWorkload::Workload1,
    };
    let config = if args.has_flag("quick") {
        AdversarialConfig::quick()
    } else {
        AdversarialConfig::default()
    };

    eprintln!(
        "running {} on 5 topologies ({} cycles of offered traffic per source)",
        workload.name(),
        config.budget_cycles
    );
    let results = preemption_figure(workload, &config).expect("adversarial workloads complete");

    println!(
        "Figure 5{}: preemption behaviour under {}",
        match workload {
            AdversarialWorkload::Workload1 => "(a)",
            AdversarialWorkload::Workload2 => "(b)",
        },
        workload.name()
    );
    println!("{}", rule(64));
    println!(
        "{:<10} {:>20} {:>20}",
        "topology", "preempted packets %", "replayed hops %"
    );
    println!("{}", rule(64));
    for result in &results {
        println!(
            "{:<10} {} {}",
            result.topology.name(),
            cell(result.preempted_packet_fraction * 100.0, 20, 2),
            cell(result.wasted_hop_fraction * 100.0, 20, 2),
        );
    }
    println!("{}", rule(64));
}
