//! Regenerates Table 1: the simulated shared-region configurations.

use taqos_bench::rule;
use taqos_topology::column::{ColumnConfig, ColumnTopology};
use taqos_topology::properties::bisection_bandwidth_bytes;

fn main() {
    let config = ColumnConfig::paper();
    println!("Table 1: Shared region topology details");
    println!("{}", rule(78));
    println!(
        "Network        : {} nodes (one column), {}-byte links, 1-cycle wire delay,",
        config.nodes, config.flit_bytes
    );
    println!("                 DOR routing, virtual cut-through flow control");
    println!("QOS            : Preemptive Virtual Clock (50K-cycle frame)");
    println!("Benchmarks     : hotspot, uniform random, tornado; 1- and 4-flit packets");
    println!(
        "Injectors      : {} per node ({} terminal + {} row inputs), {} flows total",
        config.injectors_per_node(),
        1,
        config.row_inputs_east + config.row_inputs_west,
        config.num_flows()
    );
    println!("{}", rule(78));
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>14} {:>16}",
        "topology", "VCs/port", "flits/VC", "VA latency", "pipeline", "bisection B/cyc"
    );
    println!("{}", rule(78));
    for topology in ColumnTopology::all() {
        let p = topology.params();
        let pipeline = match topology {
            ColumnTopology::Mecs => "VA-l,VA-g,XT",
            ColumnTopology::Dps => "VA,XT (+1c mid)",
            _ => "VA,XT",
        };
        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>14} {:>16}",
            topology.name(),
            p.network_vcs,
            p.vc_depth_flits,
            p.va_latency,
            pipeline,
            bisection_bandwidth_bytes(topology, &config)
        );
    }
    println!("{}", rule(78));
    println!("common         : 1 injection VC, 2 ejection VCs, 1 reserved VC per network port");
}
