//! Regenerates Table 2: relative per-flow throughput under hotspot traffic
//! with Preemptive Virtual Clock, for all five topologies.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p taqos-bench --bin table2_fairness -- [--quick] [--no-qos]
//! ```
//!
//! `--no-qos` additionally prints the same experiment without QOS support,
//! demonstrating the locality-driven unfairness PVC eliminates.

use taqos_bench::{rule, CliArgs};
use taqos_core::experiment::fairness::{
    hotspot_fairness, table2, FairnessConfig, FairnessPolicy, FairnessResult,
};
use taqos_topology::column::ColumnTopology;

fn print_rows(rows: &[FairnessResult]) {
    println!("{}", rule(96));
    println!(
        "{:<10} {:>10} {:>22} {:>22} {:>20} {:>8}",
        "topology", "mean", "min (% of mean)", "max (% of mean)", "std dev (% mean)", "Jain"
    );
    println!("{}", rule(96));
    for row in rows {
        println!(
            "{:<10} {:>10.0} {:>12.0} ({:>6.1}%) {:>12.0} ({:>6.1}%) {:>10.1} ({:>5.1}%) {:>8.4}",
            row.topology.name(),
            row.mean,
            row.min,
            row.min_pct_of_mean(),
            row.max,
            row.max_pct_of_mean(),
            row.std_dev,
            row.std_dev_pct_of_mean(),
            row.jain,
        );
    }
    println!("{}", rule(96));
}

fn main() {
    let args = CliArgs::from_env();
    let config = if args.has_flag("quick") {
        FairnessConfig::quick()
    } else {
        FairnessConfig::default()
    };

    eprintln!(
        "running hotspot fairness: 5 topologies, {} measured cycles each",
        config.measure
    );
    println!("Table 2: Relative throughput of flows under hotspot traffic (flits per flow, PVC)");
    let rows = table2(&config);
    print_rows(&rows);

    if args.has_flag("no-qos") {
        println!();
        println!("Reference without QOS support (round-robin arbitration):");
        let rows: Vec<FairnessResult> = ColumnTopology::all()
            .into_iter()
            .map(|t| hotspot_fairness(t, FairnessPolicy::NoQos, &config))
            .collect();
        print_rows(&rows);
    }
}
