//! Ablation studies beyond the paper's figures: PVC frame length, the
//! reserved (non-preemptable) quota, preemption itself, and virtual-channel
//! provisioning.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p taqos-bench --bin ablations -- [--topology dps] [--quick]
//! ```

use taqos_bench::{cell, rule, CliArgs};
use taqos_core::experiment::ablation::{
    frame_length_sweep, reserved_quota_ablation, vc_count_sweep,
};
use taqos_netsim::sim::OpenLoopConfig;
use taqos_topology::column::{ColumnConfig, ColumnTopology};

fn parse_topology(name: &str) -> ColumnTopology {
    ColumnTopology::all()
        .into_iter()
        .find(|t| t.name() == name)
        .unwrap_or(ColumnTopology::Dps)
}

fn main() {
    let args = CliArgs::from_env();
    let topology = parse_topology(args.value("topology").unwrap_or("dps"));
    let quick = args.has_flag("quick");
    let column = ColumnConfig::paper();

    let (measure, budget) = if quick {
        (6_000, 6_000)
    } else {
        (50_000, 30_000)
    };

    println!(
        "Ablation studies on {} (paper configuration otherwise)",
        topology.name()
    );
    println!();

    // 1. PVC frame length.
    println!("PVC frame length (hotspot traffic):");
    println!("{}", rule(60));
    println!(
        "{:<14} {:>22} {:>18}",
        "frame cycles", "max deviation %", "preempted %"
    );
    let frames = if quick {
        vec![1_000, 10_000, 50_000]
    } else {
        vec![1_000, 5_000, 10_000, 50_000, 200_000]
    };
    for point in frame_length_sweep(topology, &frames, &column, measure, 0xF0) {
        println!(
            "{:<14} {} {}",
            point.frame_len,
            cell(point.max_deviation_pct, 22, 2),
            cell(point.preempted_packet_fraction * 100.0, 18, 3)
        );
    }
    println!();

    // 2. Reserved quota and preemption.
    println!("Reserved quota and preemption (adversarial Workload 1):");
    println!("{}", rule(60));
    match reserved_quota_ablation(topology, &column, budget, 0xF1) {
        Ok(ablation) => {
            println!(
                "  preempted packets with reserved quota    : {:>7.2}%",
                ablation.with_quota * 100.0
            );
            println!(
                "  preempted packets without reserved quota : {:>7.2}%",
                ablation.without_quota * 100.0
            );
            println!(
                "  preempted packets without preemption     : {:>7.2}%",
                ablation.without_preemption * 100.0
            );
            println!(
                "  completion with / without quota          : {} / {} cycles",
                ablation.completion_with_quota, ablation.completion_without_quota
            );
        }
        Err(e) => println!("  ablation failed: {e}"),
    }
    println!();

    // 3. Virtual-channel provisioning.
    println!("Column-port virtual channels (uniform random at 8%):");
    println!("{}", rule(60));
    println!(
        "{:<14} {:>18} {:>22}",
        "VCs per port", "avg latency", "accepted flits/cycle"
    );
    let counts = [2u8, 4, 6, 10, 14];
    let open_loop = if quick {
        OpenLoopConfig {
            warmup: 1_000,
            measure: 5_000,
            drain: 1_000,
        }
    } else {
        OpenLoopConfig::default()
    };
    for point in vc_count_sweep(topology, &counts, &column, 0.08, open_loop, 0xF2) {
        println!(
            "{:<14} {} {}",
            point.network_vcs,
            cell(point.avg_latency, 18, 1),
            cell(point.accepted_flits_per_cycle, 22, 2)
        );
    }
}
