//! Regenerates Figure 7: router energy per flit by hop type and component.

use taqos_bench::{cell, rule};
use taqos_core::experiment::energy_area::energy_report;
use taqos_topology::column::ColumnConfig;

fn main() {
    let config = ColumnConfig::paper();
    let report = energy_report(&config);

    println!("Figure 7: Router energy per flit (pJ, 32 nm / 0.9 V)");
    println!("{}", rule(78));
    println!(
        "{:<10} {:<14} {:>12} {:>12} {:>12} {:>12}",
        "topology", "hop type", "buffers", "crossbar", "flow table", "total"
    );
    println!("{}", rule(78));
    for entry in &report.entries {
        for (category, energy) in &entry.per_category {
            println!(
                "{:<10} {:<14} {} {} {} {}",
                entry.topology.name(),
                category.label(),
                cell(energy.buffers_pj, 12, 2),
                cell(energy.crossbar_pj, 12, 2),
                cell(energy.flow_table_pj, 12, 2),
                cell(energy.total_pj(), 12, 2),
            );
        }
        println!("{}", rule(78));
    }

    // Headline comparisons quoted in the paper's text.
    let dps = report
        .three_hop_total(taqos_topology::ColumnTopology::Dps)
        .expect("DPS present");
    let mesh_x1 = report
        .three_hop_total(taqos_topology::ColumnTopology::MeshX1)
        .expect("mesh x1 present");
    let mesh_x4 = report
        .three_hop_total(taqos_topology::ColumnTopology::MeshX4)
        .expect("mesh x4 present");
    let mecs = report
        .three_hop_total(taqos_topology::ColumnTopology::Mecs)
        .expect("MECS present");
    println!(
        "3-hop route: DPS saves {} % vs mesh_x1, {} % vs mesh_x4; MECS/DPS ratio {}",
        cell(100.0 * (1.0 - dps / mesh_x1), 6, 1),
        cell(100.0 * (1.0 - dps / mesh_x4), 6, 1),
        cell(mecs / dps, 5, 2),
    );
}
