//! Regenerates Figure 3: router area overhead by component.

use taqos_bench::{cell, rule};
use taqos_core::experiment::energy_area::area_report;
use taqos_topology::column::ColumnConfig;

fn main() {
    let config = ColumnConfig::paper();
    let report = area_report(&config);

    println!("Figure 3: Router area overhead (mm^2, 32 nm)");
    println!("{}", rule(86));
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12} {:>12}",
        "topology", "row buffers*", "col buffers", "crossbar", "flow state", "total"
    );
    println!("{}", rule(86));
    for entry in &report.entries {
        let a = entry.area;
        println!(
            "{:<10} {} {} {} {} {}",
            entry.topology.name(),
            cell(a.row_buffers_mm2, 14, 4),
            cell(a.column_buffers_mm2, 14, 4),
            cell(a.crossbar_mm2, 12, 4),
            cell(a.flow_state_mm2, 12, 4),
            cell(a.total_mm2(), 12, 4),
        );
    }
    println!("{}", rule(86));
    println!("* row-input buffer capacity is identical across all topologies (the dotted");
    println!("  line of the paper's figure).");
}
