//! Structural validator for exported telemetry artifacts.
//!
//! CI runs the bench harness with `--trace-out trace.jsonl --series-out
//! series.jsonl` and then this binary over the results. It checks, without
//! any JSON dependency (the workspace has none), that:
//!
//! * every line of a `--trace` file is a single JSON object carrying the
//!   required `kind`/`cycle` fields, the `kind` tag is one of the known
//!   event kinds, flow-scoped events carry a `flow`, and event cycles are
//!   monotone non-decreasing — globally and per flow (the simulator emits
//!   events in simulation-time order, so any inversion is an exporter bug);
//! * every line of a `--series` file is a frame snapshot carrying
//!   `frame`/`cycle`/`flows`/`router_occupancy`/`link_flits`, with frame
//!   indices consecutive and cycles strictly increasing.
//!
//! Exits non-zero with a line-numbered message on the first violation.
//!
//! ```text
//! cargo run --release -p taqos-bench --bin validate_telemetry -- \
//!     --trace trace.jsonl --series series.jsonl
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;
use taqos_bench::CliArgs;

/// Every `kind` tag the trace exporter can emit.
const KNOWN_KINDS: [&str; 9] = [
    "inject",
    "grant",
    "preempt",
    "nack",
    "deliver",
    "dram_service",
    "timeout",
    "retry",
    "fault_transition",
];

/// Extracts an unsigned integer field from a single-line JSON object. Good
/// enough for the flat integer fields our exporters write; not a parser.
fn field_u64(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts a string field (`"key":"value"`) from a single-line JSON object.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

fn fail(path: &str, line_no: usize, msg: &str) -> ExitCode {
    eprintln!("FAIL {path}:{line_no}: {msg}");
    ExitCode::FAILURE
}

/// Validates a flit-level JSONL trace: shape, known kinds, required fields,
/// and cycle monotonicity (global and per flow).
fn validate_trace(path: &str) -> Result<String, ExitCode> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|err| panic!("read trace file {path}: {err}"));
    let mut last_cycle = 0u64;
    let mut per_flow_last: BTreeMap<u64, u64> = BTreeMap::new();
    let mut kind_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut events = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(fail(path, line_no, "line is not a JSON object"));
        }
        let Some(kind) = field_str(line, "kind") else {
            return Err(fail(path, line_no, "missing \"kind\" field"));
        };
        let Some(kind) = KNOWN_KINDS.iter().find(|k| **k == kind) else {
            return Err(fail(path, line_no, &format!("unknown kind \"{kind}\"")));
        };
        let Some(cycle) = field_u64(line, "cycle") else {
            return Err(fail(path, line_no, "missing \"cycle\" field"));
        };
        if cycle < last_cycle {
            return Err(fail(
                path,
                line_no,
                &format!("cycle {cycle} regresses below {last_cycle}: trace is not time-ordered"),
            ));
        }
        last_cycle = cycle;
        if *kind == "fault_transition" {
            if field_u64(line, "active").is_none() {
                return Err(fail(path, line_no, "fault_transition missing \"active\""));
            }
        } else {
            // Every flow-scoped event must name its flow, and within one
            // flow cycles must be monotone as well.
            let Some(flow) = field_u64(line, "flow") else {
                return Err(fail(
                    path,
                    line_no,
                    &format!("{kind} missing \"flow\" field"),
                ));
            };
            let flow_last = per_flow_last.entry(flow).or_insert(0);
            if cycle < *flow_last {
                return Err(fail(
                    path,
                    line_no,
                    &format!("flow {flow}: cycle {cycle} regresses below {flow_last}"),
                ));
            }
            *flow_last = cycle;
        }
        *kind_counts.entry(kind).or_insert(0) += 1;
        events += 1;
    }
    if events == 0 {
        return Err(fail(path, 0, "trace contains no events"));
    }
    let breakdown = kind_counts
        .iter()
        .map(|(k, n)| format!("{k}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    Ok(format!(
        "{path}: {events} events over {} flows, time-ordered ({breakdown})",
        per_flow_last.len()
    ))
}

/// Validates a per-frame series export: required fields, consecutive frame
/// indices, strictly increasing frame-end cycles.
fn validate_series(path: &str) -> Result<String, ExitCode> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|err| panic!("read series file {path}: {err}"));
    let mut prev: Option<(u64, u64)> = None;
    let mut frames = 0u64;
    for (idx, line) in text.lines().enumerate() {
        let line_no = idx + 1;
        if line.is_empty() {
            continue;
        }
        if !(line.starts_with('{') && line.ends_with('}')) {
            return Err(fail(path, line_no, "line is not a JSON object"));
        }
        for key in ["flows", "router_occupancy", "link_flits"] {
            if !line.contains(&format!("\"{key}\":[")) {
                return Err(fail(path, line_no, &format!("missing \"{key}\" array")));
            }
        }
        let Some(frame) = field_u64(line, "frame") else {
            return Err(fail(path, line_no, "missing \"frame\" field"));
        };
        let Some(cycle) = field_u64(line, "cycle") else {
            return Err(fail(path, line_no, "missing \"cycle\" field"));
        };
        if let Some((prev_frame, prev_cycle)) = prev {
            if frame != prev_frame + 1 {
                return Err(fail(
                    path,
                    line_no,
                    &format!("frame {frame} does not follow {prev_frame}: series has a gap"),
                ));
            }
            if cycle <= prev_cycle {
                return Err(fail(
                    path,
                    line_no,
                    &format!("frame-end cycle {cycle} does not advance past {prev_cycle}"),
                ));
            }
        }
        prev = Some((frame, cycle));
        frames += 1;
    }
    if frames == 0 {
        return Err(fail(path, 0, "series contains no frames"));
    }
    Ok(format!(
        "{path}: {frames} consecutive frames, cycles strictly increasing"
    ))
}

fn main() -> ExitCode {
    let args = CliArgs::from_env();
    let trace = args.value("trace");
    let series = args.value("series");
    if trace.is_none() && series.is_none() {
        eprintln!("usage: validate_telemetry [--trace FILE.jsonl] [--series FILE.jsonl]");
        return ExitCode::FAILURE;
    }
    let mut summaries = Vec::new();
    for (path, validate) in [
        (
            trace,
            validate_trace as fn(&str) -> Result<String, ExitCode>,
        ),
        (series, validate_series),
    ] {
        if let Some(path) = path {
            match validate(path) {
                Ok(summary) => summaries.push(summary),
                Err(code) => return code,
            }
        }
    }
    for summary in summaries {
        println!("OK {summary}");
    }
    ExitCode::SUCCESS
}
