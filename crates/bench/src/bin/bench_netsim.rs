//! Simulator throughput harness: cycles per second of the netsim hot path.
//!
//! Runs an open-loop uniform-random workload with the Preemptive Virtual
//! Clock policy, once with the optimized engine (slab packet store,
//! timing-wheel event queue, incremental arbitration request lists,
//! active-set tracking) and once with the reference engine (the seed
//! implementation's hash-map store, binary-heap queue, per-cycle allocations
//! and full scans), on the chip-scale 8×8 mesh (the headline case, 64
//! routers, one injector per node), on the hybrid chip fabric (`chip_8x8`:
//! the mesh plus per-row MECS express channels and the shared-column QOS
//! overlay, under its memory-access workload) and on every column topology
//! family (mesh x1/x2/x4, MECS, DPS; the paper's 8-node / 64-injector shared
//! region). It prints a table, cross-checks that both engines produced
//! identical statistics, and writes `BENCH_netsim.json` so future changes
//! have a performance trajectory to regress against.
//!
//! ```text
//! cargo run --release -p taqos-bench --bin bench_netsim
//! cargo run --release -p taqos-bench --bin bench_netsim -- --quick
//! cargo run --release -p taqos-bench --bin bench_netsim -- --cycles 200000 --out BENCH_netsim.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;
use taqos_bench::{cell, rule, CliArgs};
use taqos_core::chip_sim::ChipSim;
use taqos_core::shared_region::SharedRegionSim;
use taqos_netsim::config::EngineKind;
use taqos_netsim::network::Network;
use taqos_netsim::qos::QosPolicy;
use taqos_netsim::stats::NetStats;
use taqos_netsim::SimConfig;
use taqos_qos::pvc::PvcPolicy;
use taqos_topology::column::ColumnTopology;
use taqos_topology::mesh2d::Mesh2dConfig;
use taqos_traffic::injection::PacketSizeMix;
use taqos_traffic::workloads;

/// Injection rate in flits/cycle/injector: comfortably below saturation so
/// the run measures steady-state forwarding work, not queue growth.
const DEFAULT_RATE: f64 = 0.08;
const SEED: u64 = 1;

struct EngineRun {
    cycles_per_sec: f64,
    wall_secs: f64,
    stats: NetStats,
}

/// One benchmark case: a column topology, the plain chip-scale 8x8 mesh, or
/// the hybrid chip fabric (mesh + MECS express + shared-column QOS overlay).
#[derive(Debug, Clone, Copy)]
enum BenchCase {
    Mesh8x8,
    Chip8x8,
    Column(ColumnTopology),
}

impl BenchCase {
    fn name(self) -> &'static str {
        match self {
            BenchCase::Mesh8x8 => "mesh_8x8",
            BenchCase::Chip8x8 => "chip_8x8",
            BenchCase::Column(topology) => topology.name(),
        }
    }

    /// Workload pattern of the case, recorded per row in the JSON report.
    fn workload_name(self) -> &'static str {
        match self {
            BenchCase::Chip8x8 => "nearest_mc_fixed",
            _ => "uniform_random",
        }
    }

    /// QOS policy of the case, recorded per row in the JSON report.
    fn policy_name(self) -> &'static str {
        match self {
            BenchCase::Chip8x8 => "pvc@columns",
            _ => "pvc",
        }
    }

    fn build(self, engine: EngineKind, rate: f64) -> Network {
        match self {
            BenchCase::Mesh8x8 => {
                let config = Mesh2dConfig::paper_8x8();
                let spec = config.build();
                let generators = workloads::uniform_random_terminals(
                    config.num_nodes(),
                    rate,
                    PacketSizeMix::paper(),
                    SEED,
                );
                let policy: Box<dyn QosPolicy> =
                    Box::new(PvcPolicy::equal_rates(config.num_nodes()));
                Network::new(
                    spec,
                    policy,
                    generators,
                    SimConfig::default().with_engine(engine),
                )
                .expect("mesh builds")
            }
            BenchCase::Chip8x8 => {
                // The hybrid fabric under its common-case workload: every
                // non-column node streams memory requests to the controller
                // on its own row of the shared column, over the MECS express
                // channels, with PVC confined to the column routers.
                let sim = ChipSim::paper_default()
                    .with_sim_config(SimConfig::default().with_engine(engine));
                let plan = sim.nearest_mc_plan(rate);
                let generators = workloads::per_node_fixed(&plan, PacketSizeMix::paper(), SEED);
                sim.build(sim.default_policy(), generators)
                    .expect("chip builds")
            }
            BenchCase::Column(topology) => {
                let sim = SharedRegionSim::new(topology)
                    .with_sim_config(SimConfig::default().with_engine(engine));
                let generators =
                    workloads::uniform_random(sim.column(), rate, PacketSizeMix::paper(), SEED);
                let policy: Box<dyn QosPolicy> =
                    Box::new(PvcPolicy::equal_rates(sim.column().num_flows()));
                sim.build(policy, generators).expect("column builds")
            }
        }
    }
}

fn run_engine(
    case: BenchCase,
    engine: EngineKind,
    cycles: u64,
    rate: f64,
    samples: u32,
) -> EngineRun {
    // Best-of-N sampling: the fastest wall time is the least noisy figure on
    // a shared machine. Every sample simulates the identical run (same seed),
    // so the statistics of the last sample stand for all of them.
    let mut best_wall = f64::INFINITY;
    let mut stats = None;
    for _ in 0..samples.max(1) {
        let mut network = case.build(engine, rate);
        let start = Instant::now();
        network.run_for(cycles);
        best_wall = best_wall.min(start.elapsed().as_secs_f64());
        stats = Some(network.into_stats());
    }
    EngineRun {
        cycles_per_sec: cycles as f64 / best_wall,
        wall_secs: best_wall,
        stats: stats.expect("at least one sample"),
    }
}

struct TopologyResult {
    case: BenchCase,
    optimized: EngineRun,
    reference: EngineRun,
}

impl TopologyResult {
    fn speedup(&self) -> f64 {
        self.optimized.cycles_per_sec / self.reference.cycles_per_sec
    }
}

fn main() {
    let args = CliArgs::from_env();
    let cycles: u64 = if args.has_flag("quick") {
        args.value_or("cycles", 20_000)
    } else {
        args.value_or("cycles", 200_000)
    };
    let out_path = args.value("out").unwrap_or("BENCH_netsim.json").to_string();
    let rate: f64 = args.value_or("rate", DEFAULT_RATE);
    let samples: u32 = args.value_or("samples", 3);
    let cases = [
        BenchCase::Mesh8x8,
        BenchCase::Chip8x8,
        BenchCase::Column(ColumnTopology::MeshX1),
        BenchCase::Column(ColumnTopology::MeshX2),
        BenchCase::Column(ColumnTopology::MeshX4),
        BenchCase::Column(ColumnTopology::Mecs),
        BenchCase::Column(ColumnTopology::Dps),
    ];

    println!(
        "netsim throughput: {cycles} cycles @ {rate} flits/cycle/injector; uniform random + PVC \
         (columns, meshes), nearest-MC + column-scoped PVC (chip_8x8)"
    );
    println!("{}", rule(96));
    println!(
        "{:<10} {:>16} {:>16} {:>9}   {:>12} {:>12}",
        "topology", "optimized c/s", "reference c/s", "speedup", "opt wall s", "ref wall s"
    );
    println!("{}", rule(96));

    let mut results = Vec::new();
    for case in cases {
        let optimized = run_engine(case, EngineKind::Optimized, cycles, rate, samples);
        let reference = run_engine(case, EngineKind::Reference, cycles, rate, samples);
        assert_eq!(
            optimized.stats,
            reference.stats,
            "engines diverged on {}: the optimized engine is NOT equivalent",
            case.name()
        );
        let result = TopologyResult {
            case,
            optimized,
            reference,
        };
        println!(
            "{:<10} {:>16} {:>16} {:>8}x   {} {}",
            result.case.name(),
            format!("{:.0}", result.optimized.cycles_per_sec),
            format!("{:.0}", result.reference.cycles_per_sec),
            format!("{:.2}", result.speedup()),
            cell(result.optimized.wall_secs, 12, 3),
            cell(result.reference.wall_secs, 12, 3),
        );
        results.push(result);
    }
    println!("{}", rule(96));

    let headline = results
        .iter()
        .find(|r| matches!(r.case, BenchCase::Mesh8x8))
        .map(TopologyResult::speedup)
        .expect("mesh_8x8 case always runs");
    let min_speedup = results
        .iter()
        .map(TopologyResult::speedup)
        .fold(f64::INFINITY, f64::min);
    println!("8x8 mesh speedup: {headline:.2}x (target >= 3x); minimum across all cases: {min_speedup:.2}x");

    let json = render_json(cycles, rate, &results);
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");

    if args.has_flag("check") && headline < 3.0 {
        eprintln!("FAIL: 8x8 mesh speedup {headline:.2}x below the 3x target");
        std::process::exit(1);
    }
}

fn render_json(cycles: u64, rate: f64, results: &[TopologyResult]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"netsim_cycles_per_sec\",\n");
    let _ = writeln!(json, "  \"cycles\": {cycles},");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"rate_flits_per_cycle\": {rate}, \"mix\": \"paper\", \
         \"seed\": {SEED} }},"
    );
    json.push_str("  \"topologies\": [\n");
    for (i, result) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{ \"topology\": \"{}\", \"pattern\": \"{}\", \"policy\": \"{}\", \
             \"optimized_cycles_per_sec\": {:.1}, \
             \"reference_cycles_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"delivered_packets\": {} }}",
            result.case.name(),
            result.case.workload_name(),
            result.case.policy_name(),
            result.optimized.cycles_per_sec,
            result.reference.cycles_per_sec,
            result.speedup(),
            result.optimized.stats.delivered_packets,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}
