//! Simulator throughput harness: cycles per second of the netsim hot path.
//!
//! Runs each benchmark case with the optimized engine (slab packet store,
//! timing-wheel event queue, incremental arbitration request lists,
//! active-set tracking) and with the reference engine (the seed
//! implementation's hash-map store, binary-heap queue, per-cycle allocations
//! and full scans), cross-checks that both produced identical statistics,
//! prints a table and writes `BENCH_netsim.json` so future changes have a
//! performance trajectory to regress against. The cases:
//!
//! * `mesh_8x8` — the chip-scale 8×8 mesh (the headline case, 64 routers,
//!   one injector per node) under open-loop uniform random + PVC;
//! * `chip_8x8` — the hybrid chip fabric (mesh + per-row MECS express
//!   channels + shared-column QOS overlay) under its open-loop
//!   memory-access workload;
//! * `chip_closed_8x8` — the same fabric under the **closed-loop
//!   request/reply workload**: MLP-limited requesters, controller reply
//!   ports, round trips measured end to end;
//! * `chip_dram_8x8` — the closed loop with **DRAM-backed controllers**:
//!   address-interleaved banks, row-buffer hit/miss latencies and bounded
//!   request queues behind every column memory controller;
//! * `chip_dram_frfcfs_8x8` — the same DRAM-backed loop with the
//!   rate-scaled **FR-FCFS + priority-admission** scheduler (row-hit-first
//!   bank scheduling, priority-weighted age cap, lowest-priority eviction
//!   on overflow) at every controller;
//! * `chip_fault_8x8` — the closed loop on a **failing fabric**: two
//!   permanently dead reply-path links (routed around at build time),
//!   3% flit corruption recovered via NACK-retransmit, a transient
//!   memory-controller outage window, and deadline/retry recovery at
//!   every requester;
//! * `chip_incast_8x8` — the closed loop under **bursty incast**: every
//!   requester converges on one column controller, the attackers breathe
//!   through on/off phase schedules (exercising the per-cycle phase hook)
//!   while a single MLP-1 victim shares the controller;
//! * `chip_weighted_8x8` — the closed loop with **heterogeneous PVC
//!   rates**: row-banded weights (8:4:1) instead of equal shares, the
//!   weighted-VM configuration of the adversarial experiments;
//! * `chip_16x16_cols2` / `chip_16x16_cols4` — multi-column 16×16 chips
//!   (256 routers) under the closed loop, at a quarter of the cycle budget
//!   (cycles/sec stays comparable);
//! * the five column topology families (mesh x1/x2/x4, MECS, DPS; the
//!   paper's 8-node / 64-injector shared region) under uniform random.
//!
//! Wall time per engine is the **median of `--repeat` runs** (min is also
//! recorded): run-to-run noise on a busy machine was observed at ±20%, so
//! single-shot figures are not comparable across commits.
//!
//! Every timed run executes with telemetry **off** (the hot path stays
//! allocation-free); `--trace-out FILE` / `--series-out FILE` add one extra
//! *untimed* instrumented run of the first selected case that exports a
//! flit-level trace (`.jsonl` → JSON-lines events, anything else → a Chrome
//! trace viewable in Perfetto) and/or the per-frame time series.
//!
//! ```text
//! cargo run --release -p taqos-bench --bin bench_netsim
//! cargo run --release -p taqos-bench --bin bench_netsim -- --quick
//! cargo run --release -p taqos-bench --bin bench_netsim -- --cycles 200000 --repeat 5 --out BENCH_netsim.json
//! cargo run --release -p taqos-bench --bin bench_netsim -- --quick --filter chip_8x8 --trace-out chip.trace.json --series-out chip.series.jsonl
//! ```

use std::fmt::Write as _;
use std::fs::File;
use std::io::BufWriter;
use std::time::Instant;
use taqos_bench::{cell, rule, CliArgs};
use taqos_core::chip_sim::ChipSim;
use taqos_core::experiment::chip_scale::chip_fault_bench_plan;
use taqos_core::shared_region::SharedRegionSim;
use taqos_netsim::closed_loop::{DramConfig, DramScheduler, RetryPolicy};
use taqos_netsim::config::EngineKind;
use taqos_netsim::network::Network;
use taqos_netsim::qos::QosPolicy;
use taqos_netsim::stats::NetStats;
use taqos_netsim::FlowId;
use taqos_netsim::{ChromeTraceSink, JsonlSink, SimConfig, TelemetryConfig, TraceSink};
use taqos_qos::pvc::PvcPolicy;
use taqos_qos::rates::RateAllocation;
use taqos_topology::column::ColumnTopology;
use taqos_topology::grid::Coord;
use taqos_topology::mesh2d::Mesh2dConfig;
use taqos_traffic::injection::PacketSizeMix;
use taqos_traffic::workloads;

/// Injection rate in flits/cycle/injector: comfortably below saturation so
/// the run measures steady-state forwarding work, not queue growth.
const DEFAULT_RATE: f64 = 0.08;
/// MLP window of every requester in the closed-loop cases.
const CLOSED_LOOP_MLP: usize = 4;
const SEED: u64 = 1;
/// Frame cadence of the instrumented `--trace-out`/`--series-out` run.
const EXPORT_FRAME_LEN: u64 = 500;
/// MLP window of each incast attacker; the incast victim keeps MLP 1.
const INCAST_ATTACKER_MLP: usize = 6;
/// On/off cadence of the bursty incast attackers: `INCAST_BURST_ON` cycles
/// of attack out of every `INCAST_BURST_PERIOD`-cycle period.
const INCAST_BURST_PERIOD: u64 = 1_000;
const INCAST_BURST_ON: u64 = 400;
/// Per-row PVC weight bands of the weighted case (rows 0-1 / 2-4 / rest).
const WEIGHT_BANDS: [f64; 3] = [8.0, 4.0, 1.0];

/// Row-banded heterogeneous rates for the weighted case: rows 0-1 weigh
/// `WEIGHT_BANDS[0]`, rows 2-4 `WEIGHT_BANDS[1]`, the rest
/// `WEIGHT_BANDS[2]`, normalised to a total rate of one.
fn weighted_chip_rates(sim: &ChipSim) -> RateAllocation {
    let config = sim.config();
    let mut weights = Vec::with_capacity(config.num_nodes());
    for y in 0..config.height {
        let band = if y < 2 {
            WEIGHT_BANDS[0]
        } else if y < 5 {
            WEIGHT_BANDS[1]
        } else {
            WEIGHT_BANDS[2]
        };
        weights.extend(std::iter::repeat_n(band, config.width));
    }
    let total: f64 = weights.iter().sum();
    RateAllocation::from_rates(weights.into_iter().map(|w| w / total).collect())
}

struct EngineRun {
    cycles_per_sec: f64,
    wall_median_secs: f64,
    wall_min_secs: f64,
    stats: NetStats,
}

/// One benchmark case: a column topology, the plain chip-scale 8x8 mesh, the
/// hybrid chip fabric (mesh + MECS express + shared-column QOS overlay) under
/// open-loop or closed-loop traffic (instant or DRAM-backed controllers), or
/// a multi-column 16x16 chip under the closed loop.
#[derive(Debug, Clone, Copy)]
enum BenchCase {
    Mesh8x8,
    Chip8x8,
    ChipClosed8x8,
    ChipDram8x8,
    ChipDramFrfcfs8x8,
    ChipFault8x8,
    ChipIncast8x8,
    ChipWeighted8x8,
    ChipClosed16x16 { columns: usize },
    Column(ColumnTopology),
}

impl BenchCase {
    fn name(self) -> &'static str {
        match self {
            BenchCase::Mesh8x8 => "mesh_8x8",
            BenchCase::Chip8x8 => "chip_8x8",
            BenchCase::ChipClosed8x8 => "chip_closed_8x8",
            BenchCase::ChipDram8x8 => "chip_dram_8x8",
            BenchCase::ChipDramFrfcfs8x8 => "chip_dram_frfcfs_8x8",
            BenchCase::ChipFault8x8 => "chip_fault_8x8",
            BenchCase::ChipIncast8x8 => "chip_incast_8x8",
            BenchCase::ChipWeighted8x8 => "chip_weighted_8x8",
            BenchCase::ChipClosed16x16 { columns: 2 } => "chip_16x16_cols2",
            BenchCase::ChipClosed16x16 { columns: 4 } => "chip_16x16_cols4",
            BenchCase::ChipClosed16x16 { .. } => "chip_16x16",
            BenchCase::Column(topology) => topology.name(),
        }
    }

    /// Workload pattern of the case, recorded per row in the JSON report.
    fn workload_name(self) -> &'static str {
        match self {
            BenchCase::Chip8x8 => "nearest_mc_fixed",
            BenchCase::ChipClosed8x8
            | BenchCase::ChipDram8x8
            | BenchCase::ChipDramFrfcfs8x8
            | BenchCase::ChipWeighted8x8
            | BenchCase::ChipClosed16x16 { .. } => "nearest_mc_mlp",
            BenchCase::ChipFault8x8 => "nearest_mc_mlp_retry",
            BenchCase::ChipIncast8x8 => "incast_bursty_mlp",
            _ => "uniform_random",
        }
    }

    /// QOS policy of the case, recorded per row in the JSON report.
    fn policy_name(self) -> &'static str {
        match self {
            BenchCase::Chip8x8
            | BenchCase::ChipClosed8x8
            | BenchCase::ChipDram8x8
            | BenchCase::ChipDramFrfcfs8x8
            | BenchCase::ChipFault8x8
            | BenchCase::ChipIncast8x8
            | BenchCase::ChipClosed16x16 { .. } => "pvc@columns",
            BenchCase::ChipWeighted8x8 => "pvc@columns_weighted",
            _ => "pvc",
        }
    }

    /// Weight/phase parameters of the heterogeneous cases, recorded per row
    /// in the JSON report (from the same constants `build` installs) so
    /// regenerated baselines self-describe what actually ran.
    fn workload_spec(self) -> String {
        match self {
            BenchCase::ChipIncast8x8 => format!(
                "{{ \"victim\": \"node (0,4), mlp 1\", \
                 \"attacker_mlp\": {INCAST_ATTACKER_MLP}, \
                 \"burst_period\": {INCAST_BURST_PERIOD}, \
                 \"burst_on\": {INCAST_BURST_ON}, \
                 \"pattern\": \"all-to-one column controller, seeded bursty phases\" }}"
            ),
            BenchCase::ChipWeighted8x8 => format!(
                "{{ \"weights\": \"rows 0-1:{}, rows 2-4:{}, rest:{} (normalised)\" }}",
                WEIGHT_BANDS[0], WEIGHT_BANDS[1], WEIGHT_BANDS[2]
            ),
            _ => "null".to_string(),
        }
    }

    /// DRAM controller model of the case, if any. This is the single source
    /// of truth: `build` installs exactly this configuration and the JSON
    /// report records it (scheduler, page policy and age cap included), so
    /// regenerated baselines are self-describing and cannot desync from
    /// what actually ran.
    fn dram_config(self) -> Option<DramConfig> {
        match self {
            BenchCase::ChipDram8x8 => {
                Some(ChipSim::paper_default().topology_dram(DramConfig::paper()))
            }
            BenchCase::ChipDramFrfcfs8x8 => Some(
                ChipSim::paper_default()
                    .topology_dram(DramConfig::paper())
                    .with_scheduler(DramScheduler::FrFcfs),
            ),
            _ => None,
        }
    }

    /// Cycle budget of the case: the 256-router 16x16 chips run a quarter of
    /// the base budget (cycles/sec normalises the comparison anyway).
    fn cycles(self, base: u64) -> u64 {
        match self {
            BenchCase::ChipClosed16x16 { .. } => (base / 4).max(1),
            _ => base,
        }
    }

    /// Builds the case's network. `horizon` is the cycle budget the caller
    /// will run — the bursty incast case materialises its phase schedules up
    /// to exactly that horizon.
    fn build(
        self,
        engine: EngineKind,
        rate: f64,
        telemetry: TelemetryConfig,
        horizon: u64,
    ) -> Network {
        let sim_config = SimConfig::default()
            .with_engine(engine)
            .with_telemetry(telemetry);
        match self {
            BenchCase::Mesh8x8 => {
                let config = Mesh2dConfig::paper_8x8();
                let spec = config.build();
                let generators = workloads::uniform_random_terminals(
                    config.num_nodes(),
                    rate,
                    PacketSizeMix::paper(),
                    SEED,
                );
                let policy: Box<dyn QosPolicy> =
                    Box::new(PvcPolicy::equal_rates(config.num_nodes()));
                Network::new(spec, policy, generators, sim_config).expect("mesh builds")
            }
            BenchCase::Chip8x8 => {
                // The hybrid fabric under its common-case workload: every
                // non-column node streams memory requests to the controller
                // on its own row of the shared column, over the MECS express
                // channels, with PVC confined to the column routers.
                let sim = ChipSim::paper_default().with_sim_config(sim_config);
                let plan = sim.nearest_mc_plan(rate);
                let generators = workloads::per_node_fixed(&plan, PacketSizeMix::paper(), SEED);
                sim.build(sim.default_policy(), generators)
                    .expect("chip builds")
            }
            BenchCase::ChipClosed8x8 => {
                // The closed loop on the paper chip: MLP-limited requesters
                // against their nearest controller, replies returning down
                // the column and out over the mesh.
                let sim = ChipSim::paper_default().with_sim_config(sim_config);
                let plan = sim.nearest_mc_mlp_plan(CLOSED_LOOP_MLP);
                sim.build_closed_loop(sim.default_policy(), workloads::mlp_closed_loop(&plan))
                    .expect("closed-loop chip builds")
            }
            BenchCase::ChipDram8x8 | BenchCase::ChipDramFrfcfs8x8 => {
                // The DRAM-backed closed loop: bank timelines, row buffers
                // and bounded controller queues behind the same fabric —
                // FCFS controllers or rate-scaled FR-FCFS with priority
                // admission, per the case's `dram_config`.
                let dram = self.dram_config().expect("DRAM case has a config");
                let sim = ChipSim::paper_default()
                    .with_sim_config(sim_config)
                    .with_dram(dram);
                let plan = sim.nearest_mc_mlp_plan(CLOSED_LOOP_MLP);
                sim.build_closed_loop(sim.default_policy(), workloads::mlp_closed_loop(&plan))
                    .expect("DRAM-backed closed-loop chip builds")
            }
            BenchCase::ChipFault8x8 => {
                // The closed loop on a failing fabric: dead reply-path links
                // are rerouted at build time; corruption drops and the
                // controller outage are recovered at runtime through
                // NACK-retransmit and the requesters' deadline/retry layer.
                let sim = ChipSim::paper_default().with_sim_config(sim_config);
                let plan = chip_fault_bench_plan(&sim, SEED);
                let sim = sim.with_fault_plan(plan);
                let mlp_plan = sim.nearest_mc_mlp_plan(CLOSED_LOOP_MLP);
                let spec =
                    workloads::mlp_closed_loop(&mlp_plan).with_retry(RetryPolicy::new(2_000, 4));
                sim.build_closed_loop(sim.default_policy(), spec)
                    .expect("faulted closed-loop chip builds")
            }
            BenchCase::ChipIncast8x8 => {
                // Bursty incast: every requester converges on the victim
                // row's column controller; the attackers switch between
                // full-MLP bursts and silence on seeded on/off schedules
                // (driving the per-cycle phase hook), while an MLP-1 victim
                // shares the controller throughout.
                let sim = ChipSim::paper_default().with_sim_config(sim_config);
                let victim = sim.node_id(Coord::new(0, 4)).index();
                let mut plan = sim.nearest_mc_mlp_plan(INCAST_ATTACKER_MLP);
                let mc = plan[victim].expect("the victim node issues requests").1;
                let mut hogs = Vec::new();
                for (node, slot) in plan.iter_mut().enumerate() {
                    let Some((mlp, dest)) = slot.as_mut() else {
                        continue;
                    };
                    *dest = mc;
                    if node == victim {
                        *mlp = 1;
                    } else {
                        hogs.push(FlowId(node as u16));
                    }
                }
                let phases = workloads::bursty_hogs(
                    plan.len(),
                    &hogs,
                    INCAST_ATTACKER_MLP,
                    INCAST_BURST_PERIOD,
                    INCAST_BURST_ON,
                    horizon,
                    SEED,
                );
                let spec = workloads::mlp_closed_loop(&plan).with_phases(phases);
                sim.build_closed_loop(sim.default_policy(), spec)
                    .expect("incast chip builds")
            }
            BenchCase::ChipWeighted8x8 => {
                // Heterogeneous tenants: the same closed loop as
                // chip_closed_8x8, but PVC programmed with row-banded
                // weights instead of equal shares.
                let sim = ChipSim::paper_default().with_sim_config(sim_config);
                let plan = sim.nearest_mc_mlp_plan(CLOSED_LOOP_MLP);
                let rates = weighted_chip_rates(&sim);
                sim.build_closed_loop(
                    sim.weighted_policy(rates),
                    workloads::mlp_closed_loop(&plan),
                )
                .expect("weighted closed-loop chip builds")
            }
            BenchCase::ChipClosed16x16 { columns } => {
                let sim = ChipSim::multi_column(16, 16, columns).with_sim_config(sim_config);
                let plan = sim.nearest_mc_mlp_plan(CLOSED_LOOP_MLP);
                sim.build_closed_loop(sim.default_policy(), workloads::mlp_closed_loop(&plan))
                    .expect("closed-loop multi-column chip builds")
            }
            BenchCase::Column(topology) => {
                let sim = SharedRegionSim::new(topology).with_sim_config(sim_config);
                let generators =
                    workloads::uniform_random(sim.column(), rate, PacketSizeMix::paper(), SEED);
                let policy: Box<dyn QosPolicy> =
                    Box::new(PvcPolicy::equal_rates(sim.column().num_flows()));
                sim.build(policy, generators).expect("column builds")
            }
        }
    }
}

fn run_engine(
    case: BenchCase,
    engine: EngineKind,
    cycles: u64,
    rate: f64,
    repeat: u32,
) -> EngineRun {
    // Median-of-N sampling: single-shot wall times vary by +-20% run-to-run
    // on a shared machine; the median is the stable figure (the min is also
    // recorded as the optimistic bound). Every repeat simulates the
    // identical run (same seed), so one repeat's statistics stand for all of
    // them — a claim the loop *verifies* instead of assuming: a repeat whose
    // statistics diverge from the first means the simulator is
    // nondeterministic (or shares state across runs), and every figure in
    // the report would be suspect.
    let mut walls = Vec::with_capacity(repeat.max(1) as usize);
    let mut stats: Option<NetStats> = None;
    for repeat_idx in 0..repeat.max(1) {
        // Timed runs always measure the production configuration: telemetry
        // off, hot loop allocation- and branch-free.
        let mut network = case.build(engine, rate, TelemetryConfig::off(), cycles);
        let start = Instant::now();
        network.run_for(cycles);
        walls.push(start.elapsed().as_secs_f64());
        let run_stats = network.into_stats();
        match &stats {
            None => stats = Some(run_stats),
            Some(first) => assert_eq!(
                first,
                &run_stats,
                "{} ({engine:?}) repeat {repeat_idx} diverged from repeat 0: \
                 identical seeds must produce identical statistics",
                case.name()
            ),
        }
    }
    walls.sort_by(f64::total_cmp);
    let median = if walls.len() % 2 == 1 {
        walls[walls.len() / 2]
    } else {
        (walls[walls.len() / 2 - 1] + walls[walls.len() / 2]) / 2.0
    };
    EngineRun {
        cycles_per_sec: cycles as f64 / median,
        wall_median_secs: median,
        wall_min_secs: walls[0],
        stats: stats.expect("at least one repeat"),
    }
}

struct TopologyResult {
    case: BenchCase,
    optimized: EngineRun,
    reference: EngineRun,
}

impl TopologyResult {
    fn speedup(&self) -> f64 {
        self.optimized.cycles_per_sec / self.reference.cycles_per_sec
    }
}

fn main() {
    let args = CliArgs::from_env();
    let cycles: u64 = if args.has_flag("quick") {
        args.value_or("cycles", 20_000)
    } else {
        args.value_or("cycles", 200_000)
    };
    // A filtered run produces a partial report; never let it silently
    // overwrite the committed full baseline through the default path.
    let out_path = match (args.value("out"), args.value("filter")) {
        (Some(out), _) => out.to_string(),
        (None, Some(_)) => "BENCH_netsim.filtered.json".to_string(),
        (None, None) => "BENCH_netsim.json".to_string(),
    };
    let rate: f64 = args.value_or("rate", DEFAULT_RATE);
    // `--samples` is the historical name of the knob; `--repeat` wins.
    let repeat: u32 = args.value_or("repeat", args.value_or("samples", 3));
    // `--check` asserts on the mesh_8x8 headline, so a filter that excludes
    // it is a usage error — fail before running anything.
    if args.has_flag("check") {
        if let Some(filter) = args.value("filter") {
            if !"mesh_8x8".contains(filter) {
                eprintln!("--check requires the mesh_8x8 case, excluded by --filter {filter}");
                std::process::exit(2);
            }
        }
    }
    let cases = [
        BenchCase::Mesh8x8,
        BenchCase::Chip8x8,
        BenchCase::ChipClosed8x8,
        BenchCase::ChipDram8x8,
        BenchCase::ChipDramFrfcfs8x8,
        BenchCase::ChipFault8x8,
        BenchCase::ChipIncast8x8,
        BenchCase::ChipWeighted8x8,
        BenchCase::ChipClosed16x16 { columns: 2 },
        BenchCase::ChipClosed16x16 { columns: 4 },
        BenchCase::Column(ColumnTopology::MeshX1),
        BenchCase::Column(ColumnTopology::MeshX2),
        BenchCase::Column(ColumnTopology::MeshX4),
        BenchCase::Column(ColumnTopology::Mecs),
        BenchCase::Column(ColumnTopology::Dps),
    ];

    println!(
        "netsim throughput: {cycles} cycles @ {rate} flits/cycle/injector, median of {repeat}; \
         uniform random + PVC (columns, meshes), nearest-MC + column-scoped PVC (chip_8x8), \
         MLP-{CLOSED_LOOP_MLP} closed loop (chip_closed_8x8, chip_dram_8x8 with DRAM-backed \
         controllers, chip_dram_frfcfs_8x8 with FR-FCFS + priority admission, \
         chip_fault_8x8 on a failing fabric with retry recovery, \
         chip_incast_8x8 all-to-one with bursty phased attackers, \
         chip_weighted_8x8 with row-banded 8:4:1 PVC rates, \
         chip_16x16_cols2/4 at cycles/4)"
    );
    println!("{}", rule(108));
    println!(
        "{:<16} {:>14} {:>14} {:>9}   {:>10} {:>10} {:>10} {:>10}",
        "topology",
        "optimized c/s",
        "reference c/s",
        "speedup",
        "opt med s",
        "opt min s",
        "ref med s",
        "ref min s"
    );
    println!("{}", rule(108));

    let mut results = Vec::new();
    for case in cases {
        // `--filter substring` restricts the run to matching cases (handy
        // when chasing one case's regression).
        if let Some(filter) = args.value("filter") {
            if !case.name().contains(filter) {
                continue;
            }
        }
        let case_cycles = case.cycles(cycles);
        let optimized = run_engine(case, EngineKind::Optimized, case_cycles, rate, repeat);
        let reference = run_engine(case, EngineKind::Reference, case_cycles, rate, repeat);
        assert_eq!(
            optimized.stats,
            reference.stats,
            "engines diverged on {}: the optimized engine is NOT equivalent",
            case.name()
        );
        let result = TopologyResult {
            case,
            optimized,
            reference,
        };
        println!(
            "{:<16} {:>14} {:>14} {:>8}x   {} {} {} {}",
            result.case.name(),
            format!("{:.0}", result.optimized.cycles_per_sec),
            format!("{:.0}", result.reference.cycles_per_sec),
            format!("{:.2}", result.speedup()),
            cell(result.optimized.wall_median_secs, 10, 3),
            cell(result.optimized.wall_min_secs, 10, 3),
            cell(result.reference.wall_median_secs, 10, 3),
            cell(result.reference.wall_min_secs, 10, 3),
        );
        results.push(result);
    }
    println!("{}", rule(108));

    let headline = results
        .iter()
        .find(|r| matches!(r.case, BenchCase::Mesh8x8))
        .map(TopologyResult::speedup);
    let min_speedup = results
        .iter()
        .map(TopologyResult::speedup)
        .fold(f64::INFINITY, f64::min);
    if let Some(headline) = headline {
        println!(
            "8x8 mesh speedup: {headline:.2}x (target >= 3x); minimum across all cases: {min_speedup:.2}x"
        );
    }

    let json = render_json(cycles, rate, repeat, &results);
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!("wrote {out_path}");

    // `--trace-out` / `--series-out` export observability artifacts from one
    // extra untimed instrumented run of the first selected case.
    let trace_out = args.value("trace-out");
    let series_out = args.value("series-out");
    if trace_out.is_some() || series_out.is_some() {
        match results.first().map(|r| r.case) {
            Some(case) => export_instrumented(case, cycles, rate, trace_out, series_out),
            None => eprintln!("--trace-out/--series-out ignored: no case matched the filter"),
        }
    }

    // The adversarial cases carry a functional oracle on top of the engine
    // cross-check: an incast or weighted run that delivers nothing is a
    // broken workload, however fast it simulated. Deterministic, so checked
    // unconditionally (the speedup targets stay behind `--check`).
    for result in &results {
        if matches!(
            result.case,
            BenchCase::ChipIncast8x8 | BenchCase::ChipWeighted8x8
        ) {
            assert!(
                result.optimized.stats.delivered_packets > 0,
                "{} delivered no packets — the workload is wired wrong",
                result.case.name()
            );
        }
        // Row-locality oracle for the DRAM-backed cases: each requester
        // streams its private region in row-major line order, so the open
        // rows must see substantial reuse. A near-zero hit rate means the
        // address mapping is scattering the stream again (the regression
        // this guard was added for reported 0 hits in 266k services while
        // the baseline claimed double-digit rates).
        if result.case.dram_config().is_some() {
            let ds = &result.optimized.stats.dram;
            assert!(
                ds.serviced_requests > 0,
                "{} serviced no DRAM requests — the workload is wired wrong",
                result.case.name()
            );
            let hit_rate = ds.row_hits as f64 / ds.serviced_requests as f64;
            assert!(
                hit_rate >= 0.05,
                "{} DRAM row-hit rate {:.1}% is degenerate (< 5%): \
                 row locality is broken in the address mapping or scheduler",
                result.case.name(),
                100.0 * hit_rate
            );
        }
    }

    if args.has_flag("check") {
        let headline = headline.expect("--check requires the mesh_8x8 case");
        if headline < 3.0 {
            eprintln!("FAIL: 8x8 mesh speedup {headline:.2}x below the 3x target");
            std::process::exit(1);
        }
    }
}

/// One extra *untimed* run of `case` with telemetry fully enabled, exporting
/// the flit-level trace and/or the per-frame time series. Kept out of the
/// timed loop so instrumentation can never pollute the recorded figures.
/// `.jsonl` trace paths get raw JSON-lines events; any other extension gets a
/// Chrome trace (load it at <https://ui.perfetto.dev>).
fn export_instrumented(
    case: BenchCase,
    cycles: u64,
    rate: f64,
    trace_out: Option<&str>,
    series_out: Option<&str>,
) {
    let telemetry = TelemetryConfig::off()
        .with_histograms(true)
        .with_frames(EXPORT_FRAME_LEN)
        .with_max_frames((cycles / EXPORT_FRAME_LEN).max(1) as usize);
    let mut network = case.build(EngineKind::Optimized, rate, telemetry, case.cycles(cycles));
    if let Some(path) = trace_out {
        let file = BufWriter::new(File::create(path).expect("create trace file"));
        let sink: Box<dyn TraceSink> = if path.ends_with(".jsonl") {
            Box::new(JsonlSink::new(file))
        } else {
            Box::new(ChromeTraceSink::new(file))
        };
        network = network.with_trace_sink(sink);
    }
    network.run_for(case.cycles(cycles));
    if let Some(mut sink) = network.take_trace_sink() {
        sink.finish().expect("flush trace file");
    }
    let stats = network.into_stats();
    if let Some(path) = trace_out {
        println!(
            "wrote {path} (flit-level trace of {}, untimed run)",
            case.name()
        );
    }
    if let Some(path) = series_out {
        let series = stats.frames.as_ref().expect("frame series enabled");
        let mut out = String::new();
        for snap in &series.frames {
            let _ = write!(
                out,
                "{{\"frame\":{},\"cycle\":{},\"flows\":[",
                snap.frame, snap.cycle
            );
            for (f, flow) in snap.flows.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"flow\":{f},\"injected_packets\":{},\"delivered_flits\":{},\
                     \"latency_sum\":{},\"latency_samples\":{},\"round_trips\":{},\
                     \"rt_latency_sum\":{},\"rt_samples\":{}}}",
                    if f == 0 { "" } else { "," },
                    flow.injected_packets,
                    flow.delivered_flits,
                    flow.latency_sum,
                    flow.latency_samples,
                    flow.round_trips,
                    flow.rt_latency_sum,
                    flow.rt_samples,
                );
            }
            out.push_str("],\"router_occupancy\":[");
            for (i, occ) in snap.router_occupancy.iter().enumerate() {
                let _ = write!(out, "{}{occ}", if i == 0 { "" } else { "," });
            }
            out.push_str("],\"link_flits\":[");
            for (i, flits) in snap.link_flits.iter().enumerate() {
                let _ = write!(out, "{}{flits}", if i == 0 { "" } else { "," });
            }
            out.push_str("]}\n");
        }
        std::fs::write(path, out).expect("write series file");
        println!(
            "wrote {path} ({} frames of {} cycles each from {}, {} dropped)",
            series.len(),
            series.frame_len,
            case.name(),
            series.dropped_frames,
        );
    }
}

fn render_json(cycles: u64, rate: f64, repeat: u32, results: &[TopologyResult]) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"benchmark\": \"netsim_cycles_per_sec\",\n");
    let _ = writeln!(json, "  \"cycles\": {cycles},");
    let _ = writeln!(json, "  \"repeat\": {repeat},");
    let _ = writeln!(
        json,
        "  \"workload\": {{ \"rate_flits_per_cycle\": {rate}, \"mix\": \"paper\", \
         \"closed_loop_mlp\": {CLOSED_LOOP_MLP}, \"seed\": {SEED} }},"
    );
    json.push_str("  \"topologies\": [\n");
    for (i, result) in results.iter().enumerate() {
        // DRAM-backed cases record their controller model so regenerated
        // baselines are self-describing.
        let dram = match result.case.dram_config() {
            Some(d) => format!(
                "{{ \"banks\": {}, \"row_hit_latency\": {}, \"row_miss_latency\": {}, \
                 \"queue_depth\": {}, \"lines_per_row\": {}, \"backpressure\": \"{:?}\", \
                 \"scheduler\": \"{:?}\", \"page_policy\": \"{:?}\", \"age_cap\": {} }}",
                d.banks,
                d.row_hit_latency,
                d.row_miss_latency,
                d.queue_depth,
                d.lines_per_row,
                d.backpressure,
                d.scheduler,
                d.page_policy,
                d.age_cap,
            ),
            None => "null".to_string(),
        };
        // The controller and fault-layer outcome of the run rides along in
        // every row (all-zero objects without a DRAM model / fault plan), so
        // a regenerated baseline records *what the fabric did*, not only how
        // fast it simulated.
        let ds = &result.optimized.stats.dram;
        let dram_stats = format!(
            "{{ \"serviced_requests\": {}, \"row_hits\": {}, \"row_misses\": {}, \
             \"rejected_requests\": {}, \"evicted_requests\": {}, \"stalled_requests\": {}, \
             \"queue_wait_sum\": {}, \"max_queue_wait\": {}, \"max_queue_occupancy\": {}, \
             \"bank_busy_cycles\": {} }}",
            ds.serviced_requests,
            ds.row_hits,
            ds.row_misses,
            ds.rejected_requests,
            ds.evicted_requests,
            ds.stalled_requests,
            ds.queue_wait_sum,
            ds.max_queue_wait,
            ds.max_queue_occupancy,
            ds.bank_busy_cycles,
        );
        let fs = &result.optimized.stats.fault;
        let fault_stats = format!(
            "{{ \"link_drops\": {}, \"router_drops\": {}, \"corruption_drops\": {}, \
             \"mc_outage_rejections\": {}, \"abandoned_packets\": {} }}",
            fs.link_drops,
            fs.router_drops,
            fs.corruption_drops,
            fs.mc_outage_rejections,
            fs.abandoned_packets,
        );
        let _ = write!(
            json,
            "    {{ \"topology\": \"{}\", \"pattern\": \"{}\", \"policy\": \"{}\", \
             \"dram\": {}, \"workload_spec\": {}, \"cycles\": {}, \
             \"optimized_cycles_per_sec\": {:.1}, \
             \"reference_cycles_per_sec\": {:.1}, \"speedup\": {:.3}, \
             \"optimized_wall_median_s\": {:.4}, \"optimized_wall_min_s\": {:.4}, \
             \"reference_wall_median_s\": {:.4}, \"reference_wall_min_s\": {:.4}, \
             \"delivered_packets\": {}, \
             \"dram_stats\": {}, \"fault_stats\": {} }}",
            result.case.name(),
            result.case.workload_name(),
            result.case.policy_name(),
            dram,
            result.case.workload_spec(),
            result.case.cycles(cycles),
            result.optimized.cycles_per_sec,
            result.reference.cycles_per_sec,
            result.speedup(),
            result.optimized.wall_median_secs,
            result.optimized.wall_min_secs,
            result.reference.wall_median_secs,
            result.reference.wall_min_secs,
            result.optimized.stats.delivered_packets,
            dram_stats,
            fault_stats,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    json
}
