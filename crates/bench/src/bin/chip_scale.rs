//! Chip-scale experiment harness: the closed-loop isolation study, the
//! DRAM-backed latency-under-load curve, the heterogeneous MLP-mix
//! divergence sweep, the multi-column scaling study, the
//! degradation-under-faults sweep, and the QOS area report, all on the
//! hybrid chip fabric.
//!
//! ```text
//! cargo run --release -p taqos-bench --bin chip_scale
//! cargo run --release -p taqos-bench --bin chip_scale -- --quick
//! cargo run --release -p taqos-bench --bin chip_scale -- --only load
//! ```
//!
//! `--only {isolation|load|mix|scaling|faults|area}` restricts the run to
//! one experiment; `--quick` uses the shortened configurations throughout.

use taqos_bench::{cell, rule, CliArgs};
use taqos_core::experiment::chip_scale::{
    chip_isolation, chip_qos_area, degradation_under_faults, latency_under_load,
    mlp_mix_divergence, multi_column_scaling, ChipIsolationConfig, ColumnScalingConfig,
    DegradationConfig, DomainOutcome, LatencyLoadConfig, MlpMixConfig,
};
use taqos_netsim::closed_loop::DramConfig;
use taqos_topology::chip::ChipConfig;

fn fmt_latency(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.1}"),
        None => "starved".to_string(),
    }
}

fn fmt_ratio(value: Option<f64>) -> String {
    match value {
        Some(v) => format!("{v:.2}x"),
        None => "starved".to_string(),
    }
}

fn outcome_row(label: &str, outcome: &DomainOutcome) {
    println!(
        "  {label:<14} rt latency {:>9}   round trips {:>8}   throughput {:>7.3} rt/cycle",
        fmt_latency(outcome.avg_round_trip),
        outcome.round_trips,
        outcome.throughput,
    );
}

fn run_isolation(quick: bool) {
    let config = if quick {
        ChipIsolationConfig::quick()
    } else {
        ChipIsolationConfig::default()
    }
    .with_dram(DramConfig::paper());
    println!(
        "chip isolation (victim MLP {}, hog MLP {}, DRAM-backed controller):",
        config.victim_mlp, config.hog_mlp
    );
    let result = chip_isolation(&config);
    outcome_row("solo", &result.solo);
    outcome_row("protected", &result.protected);
    outcome_row("unprotected", &result.unprotected);
    outcome_row("hog(prot.)", &result.protected_hog);
    println!(
        "  victim slowdown vs solo: protected {} / unprotected {}",
        fmt_ratio(result.protected_slowdown()),
        fmt_ratio(result.unprotected_slowdown()),
    );
}

fn run_load(quick: bool) {
    let config = if quick {
        LatencyLoadConfig::quick()
    } else {
        LatencyLoadConfig::default()
    };
    println!(
        "latency under load (8x8 chip, DRAM {} banks, hit/miss {}/{} cycles, queue {}, \
         schedulers {:?}):",
        config.dram.banks,
        config.dram.row_hit_latency,
        config.dram.row_miss_latency,
        config.dram.queue_depth,
        config.schedulers,
    );
    println!("{}", rule(110));
    println!(
        "{:>18} {:>5} {:>12} {:>12} {:>12} {:>10} {:>10} {:>9} {:>10}",
        "scheduler",
        "mlp",
        "rt/cycle",
        "rt latency",
        "queue wait",
        "hit rate",
        "rejected",
        "evicted",
        "max queue"
    );
    println!("{}", rule(110));
    for p in latency_under_load(&config) {
        println!(
            "{:>18} {:>5} {} {:>12} {:>12} {:>10} {:>10} {:>9} {:>10}",
            format!("{:?}", p.scheduler),
            p.mlp,
            cell(p.throughput, 12, 4),
            fmt_latency(p.avg_round_trip),
            fmt_latency(p.avg_queue_wait),
            p.row_hit_rate
                .map(|r| format!("{:>9.1}%", 100.0 * r))
                .unwrap_or_else(|| "        -".to_string()),
            p.rejected_requests,
            p.evicted_requests,
            p.max_queue_occupancy,
        );
    }
    println!("{}", rule(110));
}

fn run_mix(quick: bool) {
    let config = if quick {
        MlpMixConfig::quick()
    } else {
        MlpMixConfig::default()
    };
    println!(
        "MLP-mix divergence (victim MLP {}, DRAM-backed controller, schedulers {:?}):",
        config.victim_mlp, config.schedulers,
    );
    println!("{}", rule(98));
    println!(
        "{:>18} {:>8} {:>14} {:>14} {:>16} {:>16}",
        "scheduler",
        "hog mlp",
        "protected rt",
        "unprotected rt",
        "prot. slowdown",
        "unprot. slowdown"
    );
    println!("{}", rule(98));
    for p in mlp_mix_divergence(&config) {
        println!(
            "{:>18} {:>8} {:>14} {:>14} {:>16} {:>16}",
            format!("{:?}", p.scheduler),
            p.hog_mlp,
            fmt_latency(p.protected.avg_round_trip),
            fmt_latency(p.unprotected.avg_round_trip),
            fmt_ratio(p.protected_slowdown()),
            fmt_ratio(p.unprotected_slowdown()),
        );
    }
    println!("{}", rule(98));
}

fn run_scaling(quick: bool) {
    let config = if quick {
        ColumnScalingConfig::quick()
    } else {
        ColumnScalingConfig::default()
    };
    println!(
        "multi-column scaling ({}x{} chip, MLP {}):",
        config.width, config.height, config.mlp
    );
    for p in multi_column_scaling(&config) {
        println!(
            "  columns {:>2}   requesters {:>4}   throughput {:>7.3} rt/cycle   rt latency {:>9}",
            p.columns,
            p.requesters,
            p.throughput,
            fmt_latency(p.avg_round_trip),
        );
    }
}

fn run_faults(quick: bool) {
    let config = if quick {
        DegradationConfig::quick()
    } else {
        DegradationConfig::default()
    };
    println!(
        "degradation under faults (victim MLP {}, hog MLP {}, {} ppm corruption per fault, \
         retry deadline {} x{}):",
        config.victim_mlp,
        config.hog_mlp,
        config.corruption_ppm_per_fault,
        config.retry.deadline,
        config.retry.max_attempts,
    );
    println!("{}", rule(104));
    println!(
        "{:>7} {:>14} {:>12} {:>16} {:>14} {:>8} {:>9} {:>8}",
        "faults",
        "protected rt",
        "vs 0-fault",
        "unprotected rt",
        "vs 0-fault",
        "drops",
        "timeouts",
        "retries"
    );
    println!("{}", rule(104));
    for p in degradation_under_faults(&config) {
        println!(
            "{:>7} {:>14} {:>12} {:>16} {:>14} {:>8} {:>9} {:>8}",
            p.faults,
            fmt_latency(p.protected.avg_round_trip),
            fmt_ratio(p.protected_vs_fault_free),
            fmt_latency(p.unprotected.avg_round_trip),
            fmt_ratio(p.unprotected_vs_fault_free),
            p.protected_fault_drops,
            p.protected_request_timeouts,
            p.protected_request_retries,
        );
    }
    println!("{}", rule(104));
}

fn run_area() {
    let report = chip_qos_area(&ChipConfig::paper_8x8().build());
    println!("QOS area (8x8 chip, 32 nm):");
    println!(
        "  per router {:.4} mm2   chip-wide {:.3} mm2   column-confined {:.3} mm2   saving {:.1}%",
        report.per_router_mm2,
        report.chip_wide_mm2,
        report.column_confined_mm2,
        100.0 * report.saving_fraction,
    );
}

fn main() {
    let args = CliArgs::from_env();
    let quick = args.has_flag("quick");
    let only = args.value("only");
    const EXPERIMENTS: [&str; 6] = ["isolation", "load", "mix", "scaling", "faults", "area"];
    if let Some(only) = only {
        if !EXPERIMENTS.contains(&only) {
            eprintln!("unknown experiment --only {only}; expected one of {EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }
    let want = |name: &str| only.is_none_or(|o| o == name);
    if want("isolation") {
        run_isolation(quick);
    }
    if want("load") {
        run_load(quick);
    }
    if want("mix") {
        run_mix(quick);
    }
    if want("scaling") {
        run_scaling(quick);
    }
    if want("faults") {
        run_faults(quick);
    }
    if want("area") {
        run_area();
    }
}
