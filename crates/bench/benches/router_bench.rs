//! Criterion micro-benchmarks of the simulator itself: how fast one column
//! topology simulates under load. Useful for tracking simulator performance
//! regressions; the paper-figure harnesses live in `src/bin/`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use taqos_core::shared_region::SharedRegionSim;
use taqos_netsim::qos::QosPolicy;
use taqos_qos::pvc::PvcPolicy;
use taqos_topology::column::ColumnTopology;
use taqos_traffic::injection::PacketSizeMix;
use taqos_traffic::workloads;

fn simulate_cycles(topology: ColumnTopology, cycles: u64) -> u64 {
    let sim = SharedRegionSim::new(topology);
    let generators = workloads::uniform_random(sim.column(), 0.08, PacketSizeMix::paper(), 1);
    let policy: Box<dyn QosPolicy> = Box::new(PvcPolicy::equal_rates(sim.column().num_flows()));
    let mut network = sim.build(policy, generators).expect("column builds");
    network.run_for(cycles);
    network.delivered_flits()
}

fn bench_topology_stepping(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_simulation_2k_cycles");
    group.sample_size(10);
    for topology in ColumnTopology::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &topology,
            |b, &topology| b.iter(|| simulate_cycles(topology, 2_000)),
        );
    }
    group.finish();
}

fn bench_spec_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("column_spec_construction");
    for topology in ColumnTopology::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &topology,
            |b, &topology| {
                b.iter(|| topology.build(&taqos_topology::column::ColumnConfig::paper()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_topology_stepping, bench_spec_construction);
criterion_main!(benches);
