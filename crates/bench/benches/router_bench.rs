//! Micro-benchmarks of the simulator itself: how fast one column topology
//! simulates under load. Useful for tracking simulator performance
//! regressions; the paper-figure harnesses live in `src/bin/`.
//!
//! Built with `harness = false` and a plain timing loop (`taqos_bench::
//! measure`) because Criterion is unavailable in the offline build
//! environment. Run with `cargo bench --bench router_bench`.

use taqos_bench::{measure, report};
use taqos_core::shared_region::SharedRegionSim;
use taqos_netsim::qos::QosPolicy;
use taqos_qos::pvc::PvcPolicy;
use taqos_topology::column::ColumnTopology;
use taqos_traffic::injection::PacketSizeMix;
use taqos_traffic::workloads;

fn simulate_cycles(topology: ColumnTopology, cycles: u64) -> u64 {
    let sim = SharedRegionSim::new(topology);
    let generators = workloads::uniform_random(sim.column(), 0.08, PacketSizeMix::paper(), 1);
    let policy: Box<dyn QosPolicy> = Box::new(PvcPolicy::equal_rates(sim.column().num_flows()));
    let mut network = sim.build(policy, generators).expect("column builds");
    network.run_for(cycles);
    network.delivered_flits()
}

fn main() {
    for topology in ColumnTopology::all() {
        let m = measure(10, || {
            simulate_cycles(topology, 2_000);
        });
        report("column_simulation_2k_cycles", topology.name(), m);
    }
    for topology in ColumnTopology::all() {
        let m = measure(10, || {
            topology.build(&taqos_topology::column::ColumnConfig::paper());
        });
        report("column_spec_construction", topology.name(), m);
    }
}
