//! Benchmarks of whole experiment points: one load/latency point, one
//! fairness measurement, and one adversarial preemption run, all in quick
//! configurations. These bound the cost of regenerating the paper's figures.
//!
//! Built with `harness = false` and a plain timing loop (`taqos_bench::
//! measure`) because Criterion is unavailable in the offline build
//! environment. Run with `cargo bench --bench experiment_bench`.

use taqos_bench::{measure, report};
use taqos_core::experiment::fairness::{hotspot_fairness, FairnessConfig, FairnessPolicy};
use taqos_core::experiment::latency::{latency_point, SweepConfig, SweepPattern};
use taqos_core::experiment::preemption::{
    preemption_impact, AdversarialConfig, AdversarialWorkload,
};
use taqos_netsim::sim::OpenLoopConfig;
use taqos_topology::column::ColumnTopology;

fn quick_sweep_config() -> SweepConfig {
    SweepConfig {
        open_loop: OpenLoopConfig {
            warmup: 500,
            measure: 2_000,
            drain: 500,
        },
        ..SweepConfig::default()
    }
}

fn main() {
    let config = quick_sweep_config();
    for topology in [
        ColumnTopology::MeshX1,
        ColumnTopology::Mecs,
        ColumnTopology::Dps,
    ] {
        let m = measure(10, || {
            latency_point(topology, SweepPattern::UniformRandom, 0.05, &config);
        });
        report("latency_point_3k_cycles", topology.name(), m);
    }

    let mut fairness_config = FairnessConfig::quick();
    fairness_config.warmup = 500;
    fairness_config.measure = 3_000;
    let m = measure(10, || {
        hotspot_fairness(ColumnTopology::Dps, FairnessPolicy::Pvc, &fairness_config);
    });
    report("hotspot_fairness_3k_cycles", "dps_pvc", m);

    let mut adversarial_config = AdversarialConfig::quick();
    adversarial_config.budget_cycles = 3_000;
    let m = measure(10, || {
        preemption_impact(
            ColumnTopology::MeshX1,
            AdversarialWorkload::Workload1,
            &adversarial_config,
        )
        .expect("completes");
    });
    report("adversarial_workload1", "mesh_x1", m);
}
