//! Criterion benchmarks of whole experiment points: one load/latency point,
//! one fairness measurement, and one adversarial preemption run, all in quick
//! configurations. These bound the cost of regenerating the paper's figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use taqos_core::experiment::fairness::{hotspot_fairness, FairnessConfig, FairnessPolicy};
use taqos_core::experiment::latency::{latency_point, SweepConfig, SweepPattern};
use taqos_core::experiment::preemption::{
    preemption_impact, AdversarialConfig, AdversarialWorkload,
};
use taqos_netsim::sim::OpenLoopConfig;
use taqos_topology::column::ColumnTopology;

fn quick_sweep_config() -> SweepConfig {
    SweepConfig {
        open_loop: OpenLoopConfig {
            warmup: 500,
            measure: 2_000,
            drain: 500,
        },
        ..SweepConfig::default()
    }
}

fn bench_latency_point(c: &mut Criterion) {
    let config = quick_sweep_config();
    let mut group = c.benchmark_group("latency_point_3k_cycles");
    group.sample_size(10);
    for topology in [ColumnTopology::MeshX1, ColumnTopology::Mecs, ColumnTopology::Dps] {
        group.bench_with_input(
            BenchmarkId::from_parameter(topology.name()),
            &topology,
            |b, &topology| {
                b.iter(|| latency_point(topology, SweepPattern::UniformRandom, 0.05, &config))
            },
        );
    }
    group.finish();
}

fn bench_fairness_point(c: &mut Criterion) {
    let mut config = FairnessConfig::quick();
    config.warmup = 500;
    config.measure = 3_000;
    let mut group = c.benchmark_group("hotspot_fairness_3k_cycles");
    group.sample_size(10);
    group.bench_function("dps_pvc", |b| {
        b.iter(|| hotspot_fairness(ColumnTopology::Dps, FairnessPolicy::Pvc, &config))
    });
    group.finish();
}

fn bench_adversarial_run(c: &mut Criterion) {
    let mut config = AdversarialConfig::quick();
    config.budget_cycles = 3_000;
    let mut group = c.benchmark_group("adversarial_workload1");
    group.sample_size(10);
    group.bench_function("mesh_x1", |b| {
        b.iter(|| {
            preemption_impact(
                ColumnTopology::MeshX1,
                AdversarialWorkload::Workload1,
                &config,
            )
            .expect("completes")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_latency_point,
    bench_fairness_point,
    bench_adversarial_run
);
criterion_main!(benches);
