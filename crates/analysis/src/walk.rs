//! Deterministic workspace walker.
//!
//! Collects every `*.rs` file that lives under a `src` directory of the
//! workspace (member crates and the root package), skipping build output,
//! VCS metadata and test fixtures. Integration tests and examples are
//! intentionally out of scope: the invariants protect simulation results,
//! and test code unwraps and allocates by design.

use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "node_modules"];

/// Returns root-relative, `/`-separated paths of all analyzable sources,
/// sorted for deterministic output.
pub fn rust_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    descend(root, root, false, &mut out)?;
    out.sort();
    Ok(out)
}

fn descend(root: &Path, dir: &Path, under_src: bool, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            descend(root, &path, under_src || name == "src", out)?;
        } else if under_src && name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| e.to_string())?
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}
