//! Minimal JSON reader/writer, just enough for the baseline file.
//!
//! The workspace has no serialization dependency (see `crates/compat`), and
//! the analyzer must stay zero-dependency, so the baseline is read with a
//! tiny recursive-descent parser over the JSON subset the analyzer itself
//! writes: objects, arrays, strings with `\`-escapes, unsigned integers,
//! booleans and null. Anything fancier (floats, unicode escapes beyond
//! `\uXXXX`, comments) is rejected — the baseline is machine-written, so a
//! parse failure means the file was hand-mangled and should be regenerated.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Unsigned integer (the only numeric form the analyzer writes).
    Num(u64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object; insertion order is irrelevant for our uses.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or("bad \\u escape")?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through byte by byte.
                    let ch_len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + ch_len)
                        .ok_or("truncated utf8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected , or }} got {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected , or ] got {other:?}")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_object() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\n\"y\""], "c": {}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        let Value::Arr(items) = v.get("b").unwrap() else {
            panic!("not an array");
        };
        assert_eq!(items[2].as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(original));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(original));
    }
}
