//! The rule engine: walks one file's token stream and reports violations.
//!
//! Scope tracking is deliberately lightweight — a brace-depth stack whose
//! entries remember whether they were opened by a `fn` (and if so whether
//! the function is marked hot or is a test), by a `struct` (and whether its
//! name marks it as a stats/accounting struct), or by a `#[cfg(test)]`
//! module. That is enough context for every rule; no expression parsing is
//! attempted.

use crate::lexer::{lex, Tok, Token};
use std::collections::BTreeSet;

/// Every lint rule the analyzer knows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` in a result-affecting crate: iteration order is
    /// seeded per process, so any iteration silently breaks cross-process
    /// reproducibility. Use `BTreeMap`/`BTreeSet` or sorted access.
    HashIter,
    /// `Instant`/`SystemTime` outside the bench crate: wall-clock reads make
    /// results depend on the machine, not the seed.
    WallClock,
    /// Unseeded RNG construction (`thread_rng`, `from_entropy`, `OsRng`):
    /// every random stream must derive from an explicit seed.
    UnseededRng,
    /// `f32`/`f64` field in a `*Stats` struct: accounting must stay in exact
    /// integers so engine equivalence can compare with `==`; floats belong
    /// in derived accessors only.
    FloatStatsField,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in
    /// a hot-path module.
    PanicPath,
    /// Direct `container[index]` indexing in a hot-path module (a hidden
    /// panic path).
    PanicIndex,
    /// Allocation (`Vec::new`, `vec![]`, `Box::new`, `.clone()`,
    /// `.collect()`) inside a function annotated hot.
    HotAlloc,
    /// `unsafe` without a `SAFETY:` comment within the three preceding
    /// lines.
    UnsafeNoSafety,
    /// A malformed lint directive: `allow(...)` without a `-- reason`, or
    /// naming an unknown rule. Never suppressible.
    LintMalformed,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 9] = [
        Rule::HashIter,
        Rule::WallClock,
        Rule::UnseededRng,
        Rule::FloatStatsField,
        Rule::PanicPath,
        Rule::PanicIndex,
        Rule::HotAlloc,
        Rule::UnsafeNoSafety,
        Rule::LintMalformed,
    ];

    /// Stable machine-readable identifier, used in directives, JSON output
    /// and the baseline file.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::WallClock => "wall-clock",
            Rule::UnseededRng => "unseeded-rng",
            Rule::FloatStatsField => "float-stats-field",
            Rule::PanicPath => "panic-path",
            Rule::PanicIndex => "panic-index",
            Rule::HotAlloc => "hot-alloc",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::LintMalformed => "lint-malformed",
        }
    }

    /// Parses a rule identifier as written in an allow directive.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.id() == id)
    }

    /// One-line remediation hint shown in human output.
    pub fn help(self) -> &'static str {
        match self {
            Rule::HashIter => {
                "use BTreeMap/BTreeSet, or allow(hash-iter) with proof the map is never iterated"
            }
            Rule::WallClock => "thread simulated cycles through instead of reading the clock",
            Rule::UnseededRng => "construct RNGs with seed_from_u64 from an explicit seed",
            Rule::FloatStatsField => "store exact integers; compute floats in accessor methods",
            Rule::PanicPath => {
                "handle the failure arm (SimError), or allow(panic-path) with the invariant"
            }
            Rule::PanicIndex => {
                "use get()/get_mut() or iterators, or allow(panic-index) with the bound proof"
            }
            Rule::HotAlloc => {
                "reuse a preallocated scratch buffer, or allow(hot-alloc) with why it is cold"
            }
            Rule::UnsafeNoSafety => "precede the unsafe block with a `SAFETY:` comment",
            Rule::LintMalformed => "directives need a reason: allow(<rule>) -- <why this is sound>",
        }
    }
}

/// One finding: a rule violated at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the analyzed root, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human message naming the offending construct.
    pub message: String,
    /// The trimmed source line, for reports and fingerprinting.
    pub excerpt: String,
    /// Content-based identity used by the baseline ratchet; stable across
    /// line-number drift. Filled by [`crate::fingerprint`].
    pub fingerprint: String,
}

/// Per-file policy, derived from [`crate::Config`] before
/// scanning.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilePolicy {
    /// File belongs to a result-affecting crate (hash-iter applies).
    pub result_affecting: bool,
    /// File is exempt from the wall-clock rule (bench harness).
    pub wall_clock_exempt: bool,
    /// File is one of the hot-path modules (panic rules apply).
    pub hot_path: bool,
}

/// RNG constructors that bypass explicit seeding.
const UNSEEDED_RNG: [&str; 5] = [
    "thread_rng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
    "EntropyRng",
];

/// Keywords that may legitimately be followed by `[` (slice patterns, array
/// literals in expression position) and therefore do not indicate indexing.
const NOT_INDEX_BEFORE: [&str; 18] = [
    "let", "in", "return", "mut", "ref", "move", "box", "match", "if", "while", "else", "do",
    "yield", "await", "as", "unsafe", "loop", "for",
];

#[derive(Debug)]
struct AllowMark {
    line: u32,
    rules: Vec<String>,
    has_reason: bool,
}

#[derive(Debug, Default)]
struct Directives {
    allows: Vec<AllowMark>,
    hot_lines: Vec<u32>,
    /// Lines covered by a comment containing `SAFETY:`.
    safety_lines: BTreeSet<u32>,
    malformed: Vec<(u32, String)>,
}

/// Strips doc-comment continuation markers so `/// text` and `//! text`
/// yield `text`, then trims. A directive must *start* the comment, so prose
/// that merely mentions the marker does not trigger.
fn comment_body(text: &str) -> &str {
    text.trim_start_matches(['/', '!']).trim()
}

fn parse_directives(comments: &[crate::lexer::Comment]) -> Directives {
    let mut d = Directives::default();
    for c in comments {
        if c.text.contains("SAFETY:") {
            for line in c.line..=c.end_line {
                d.safety_lines.insert(line);
            }
        }
        let body = comment_body(&c.text);
        let Some(rest) = body.strip_prefix("taqos-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot" {
            d.hot_lines.push(c.line);
            continue;
        }
        let Some((rule_list, tail)) = rest.strip_prefix("allow(").and_then(|r| {
            let close = r.find(')')?;
            Some((&r[..close], r[close + 1..].trim()))
        }) else {
            d.malformed
                .push((c.line, format!("unrecognized directive `{rest}`")));
            continue;
        };
        let rules: Vec<String> = rule_list
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let has_reason = tail
            .strip_prefix("--")
            .is_some_and(|reason| !reason.trim().is_empty());
        if rules.is_empty() {
            d.malformed
                .push((c.line, "allow() names no rules".to_string()));
            continue;
        }
        for r in &rules {
            if Rule::from_id(r).is_none() {
                d.malformed.push((c.line, format!("unknown rule `{r}`")));
            }
        }
        if !has_reason {
            d.malformed.push((
                c.line,
                format!("allow({rule_list}) lacks a `-- <reason>` justification"),
            ));
        }
        d.allows.push(AllowMark {
            line: c.line,
            rules,
            has_reason,
        });
    }
    d
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Block,
    Fn { hot: bool, test: bool },
    Struct { stats: bool },
    TestMod,
}

#[derive(Debug)]
enum Pending {
    Mod { test: bool },
    Fn { hot: bool, test: bool },
    Struct { stats: bool },
}

struct Scanner<'a> {
    file: &'a str,
    policy: FilePolicy,
    lines: Vec<&'a str>,
    directives: Directives,
    scopes: Vec<ScopeKind>,
    pending: Option<Pending>,
    /// Set when an attribute contained `test` (covers `#[test]`,
    /// `#[cfg(test)]`, `#[cfg(all(test, …))]`); consumed by the next item.
    pending_test_attr: bool,
    /// Bracket depth of the attribute currently being skipped, if any.
    attr_depth: u32,
    in_use: bool,
    out: Vec<Violation>,
    /// (rule, line) pairs already reported, to collapse duplicates such as
    /// two `HashMap` mentions in one declaration.
    seen: BTreeSet<(Rule, u32)>,
}

/// Scans one file and returns its violations (fingerprints unset).
pub fn scan_file(file: &str, source: &str, policy: FilePolicy) -> Vec<Violation> {
    let lexed = lex(source);
    let directives = parse_directives(&lexed.comments);
    let mut scanner = Scanner {
        file,
        policy,
        lines: source.lines().collect(),
        directives,
        scopes: Vec::new(),
        pending: None,
        pending_test_attr: false,
        attr_depth: 0,
        in_use: false,
        out: Vec::new(),
        seen: BTreeSet::new(),
    };
    scanner.run(&lexed.tokens);
    scanner.finish()
}

impl Scanner<'_> {
    fn in_test(&self) -> bool {
        self.scopes.iter().any(|s| {
            matches!(s, ScopeKind::TestMod) || matches!(s, ScopeKind::Fn { test: true, .. })
        })
    }

    fn in_hot_fn(&self) -> bool {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| match s {
                ScopeKind::Fn { hot, .. } => Some(*hot),
                _ => None,
            })
            .unwrap_or(false)
    }

    fn in_stats_struct(&self) -> bool {
        matches!(self.scopes.last(), Some(ScopeKind::Struct { stats: true }))
    }

    fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn report(&mut self, rule: Rule, line: u32, message: String) {
        if !self.seen.insert((rule, line)) {
            return;
        }
        self.out.push(Violation {
            file: self.file.to_string(),
            line,
            rule,
            message,
            excerpt: self.excerpt(line),
            fingerprint: String::new(),
        });
    }

    /// A hot marker within the six lines above (or on) `line` marks the
    /// next function as hot; the window tolerates an attribute block or doc
    /// comment between the marker and the `fn` keyword.
    fn hot_marked(&self, line: u32) -> bool {
        self.directives
            .hot_lines
            .iter()
            .any(|&h| h <= line && line - h <= 6)
    }

    fn run(&mut self, tokens: &[Token]) {
        for i in 0..tokens.len() {
            let t = &tokens[i];
            let prev = i.checked_sub(1).map(|p| &tokens[p].tok);
            // Attribute skipping: `#[…]` and `#![…]` contents are consumed
            // here, looking only for the `test` marker.
            if self.attr_depth > 0 {
                match &t.tok {
                    Tok::Punct(b'[') => self.attr_depth += 1,
                    Tok::Punct(b']') => self.attr_depth -= 1,
                    Tok::Ident(name) if name == "test" => self.pending_test_attr = true,
                    _ => {}
                }
                continue;
            }
            if t.tok == Tok::Punct(b'[') {
                let attr_start = matches!(prev, Some(Tok::Punct(b'#')))
                    || (matches!(prev, Some(Tok::Punct(b'!')))
                        && matches!(
                            i.checked_sub(2).map(|p| &tokens[p].tok),
                            Some(Tok::Punct(b'#'))
                        ));
                if attr_start {
                    self.attr_depth = 1;
                    continue;
                }
            }
            match &t.tok {
                Tok::Punct(b'{') => {
                    let kind = match self.pending.take() {
                        Some(Pending::Mod { test: true }) => ScopeKind::TestMod,
                        Some(Pending::Fn { hot, test }) => ScopeKind::Fn { hot, test },
                        Some(Pending::Struct { stats }) => ScopeKind::Struct { stats },
                        Some(Pending::Mod { test: false }) | None => ScopeKind::Block,
                    };
                    self.scopes.push(kind);
                }
                Tok::Punct(b'}') => {
                    self.scopes.pop();
                }
                Tok::Punct(b';') => {
                    self.pending = None;
                    self.in_use = false;
                }
                Tok::Punct(b'[') if !self.in_use => self.check_index(prev, t.line),
                Tok::Ident(_) if !self.in_use => self.check_ident(tokens, i),
                _ => {}
            }
        }
    }

    fn check_index(&mut self, prev: Option<&Tok>, line: u32) {
        if !self.policy.hot_path || self.in_test() {
            return;
        }
        let indexes = match prev {
            Some(Tok::Ident(id)) => !NOT_INDEX_BEFORE.contains(&id.as_str()),
            Some(Tok::Punct(b')' | b']' | b'?')) => true,
            _ => false,
        };
        if indexes {
            self.report(
                Rule::PanicIndex,
                line,
                "direct indexing on the hot path panics on out-of-bounds".to_string(),
            );
        }
    }

    fn check_ident(&mut self, tokens: &[Token], i: usize) {
        let line = tokens[i].line;
        let Tok::Ident(name) = &tokens[i].tok else {
            return;
        };
        let name = name.as_str();
        let at = |j: usize| tokens.get(j).map(|t| &t.tok);
        let prev = i.checked_sub(1).and_then(&at);
        let next = at(i + 1);
        let after_dot = matches!(prev, Some(Tok::Punct(b'.')));
        let called = matches!(next, Some(Tok::Punct(b'(')));
        let is_macro = matches!(next, Some(Tok::Punct(b'!')));
        // `Vec::new` / `Box::new`: ident followed by `::` then `new(`.
        let static_new = |ctor: &str| {
            name == ctor
                && matches!(next, Some(Tok::Punct(b':')))
                && matches!(at(i + 2), Some(Tok::Punct(b':')))
                && matches!(at(i + 3), Some(Tok::Ident(m)) if m == "new")
                && matches!(at(i + 4), Some(Tok::Punct(b'(')))
        };
        match name {
            "use" if !after_dot => {
                self.in_use = true;
                return;
            }
            "mod" => {
                self.pending = Some(Pending::Mod {
                    test: std::mem::take(&mut self.pending_test_attr),
                });
                return;
            }
            "fn" => {
                let test = std::mem::take(&mut self.pending_test_attr);
                self.pending = Some(Pending::Fn {
                    hot: self.hot_marked(line),
                    test,
                });
                return;
            }
            "struct" => {
                let stats = matches!(next, Some(Tok::Ident(n)) if n.ends_with("Stats"));
                self.pending = Some(Pending::Struct { stats });
                self.pending_test_attr = false;
                return;
            }
            _ => {}
        }
        if name == "unsafe" {
            let covered =
                (line.saturating_sub(3)..=line).any(|l| self.directives.safety_lines.contains(&l));
            if !covered {
                self.report(
                    Rule::UnsafeNoSafety,
                    line,
                    "`unsafe` without a `SAFETY:` comment on the preceding lines".to_string(),
                );
            }
            return;
        }
        if self.in_test() {
            return;
        }
        match name {
            "HashMap" | "HashSet" if self.policy.result_affecting => {
                self.report(
                    Rule::HashIter,
                    line,
                    format!("`{name}` in a result-affecting crate has seeded iteration order"),
                );
            }
            "Instant" | "SystemTime" if !self.policy.wall_clock_exempt => {
                self.report(
                    Rule::WallClock,
                    line,
                    format!("`{name}` reads the wall clock; results must depend only on the seed"),
                );
            }
            _ if UNSEEDED_RNG.contains(&name) => {
                self.report(
                    Rule::UnseededRng,
                    line,
                    format!("`{name}` constructs an unseeded RNG"),
                );
            }
            "f32" | "f64" if self.in_stats_struct() => {
                self.report(
                    Rule::FloatStatsField,
                    line,
                    format!("`{name}` field in a stats struct breaks exact-integer accounting"),
                );
            }
            "unwrap" | "expect" if self.policy.hot_path && after_dot && called => {
                self.report(
                    Rule::PanicPath,
                    line,
                    format!("`.{name}()` on the hot path panics instead of surfacing an error"),
                );
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if self.policy.hot_path && is_macro && !after_dot =>
            {
                self.report(
                    Rule::PanicPath,
                    line,
                    format!("`{name}!` on the hot path aborts the simulation"),
                );
            }
            "Vec" | "Box" if self.in_hot_fn() && static_new(name) => {
                self.report(
                    Rule::HotAlloc,
                    line,
                    format!("`{name}::new()` allocates inside a hot-annotated function"),
                );
            }
            "vec" if self.in_hot_fn() && is_macro => {
                self.report(
                    Rule::HotAlloc,
                    line,
                    "`vec![]` allocates inside a hot-annotated function".to_string(),
                );
            }
            "clone" | "collect" | "to_vec" | "to_owned"
                if self.in_hot_fn() && after_dot && called =>
            {
                self.report(
                    Rule::HotAlloc,
                    line,
                    format!("`.{name}()` allocates inside a hot-annotated function"),
                );
            }
            _ => {}
        }
    }

    /// Applies allow directives and appends malformed-directive findings.
    fn finish(mut self) -> Vec<Violation> {
        let allows = &self.directives.allows;
        self.out.retain(|v| {
            if v.rule == Rule::LintMalformed {
                return true;
            }
            !allows.iter().any(|a| {
                a.has_reason
                    && (a.line == v.line || a.line + 1 == v.line)
                    && a.rules.iter().any(|r| r == v.rule.id())
            })
        });
        for (line, msg) in std::mem::take(&mut self.directives.malformed) {
            self.report(Rule::LintMalformed, line, msg);
        }
        self.out.sort_by_key(|v| (v.line, v.rule));
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_policy() -> FilePolicy {
        FilePolicy {
            result_affecting: true,
            wall_clock_exempt: false,
            hot_path: true,
        }
    }

    fn rules_at(src: &str, policy: FilePolicy) -> Vec<(&'static str, u32)> {
        scan_file("t.rs", src, policy)
            .into_iter()
            .map(|v| (v.rule.id(), v.line))
            .collect()
    }

    #[test]
    fn panic_paths_flagged_tests_skipped() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) { x.unwrap(); }\n}\n";
        assert_eq!(rules_at(src, hot_policy()), [("panic-path", 1)]);
    }

    #[test]
    fn test_attribute_skips_the_function_but_not_siblings() {
        let src = "#[test]\nfn a(x: Option<u32>) { x.unwrap(); }\n\
                   fn b(x: Option<u32>) { x.unwrap(); }\n";
        assert_eq!(rules_at(src, hot_policy()), [("panic-path", 3)]);
    }

    #[test]
    fn plain_test_identifier_does_not_poison_the_next_fn() {
        let src = "fn a() { let test = 1; }\nfn b(x: Option<u32>) { x.unwrap(); }\n";
        assert_eq!(rules_at(src, hot_policy()), [("panic-path", 2)]);
    }

    #[test]
    fn allow_with_reason_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // taqos-lint: allow(panic-path) -- checked by caller\n}\n";
        assert!(rules_at(src, hot_policy()).is_empty());
    }

    #[test]
    fn allow_on_preceding_line_suppresses() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   // taqos-lint: allow(panic-path) -- checked by caller\n\
                   x.unwrap()\n}\n";
        assert!(rules_at(src, hot_policy()).is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed_and_does_not_suppress() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   x.unwrap() // taqos-lint: allow(panic-path)\n}\n";
        let got = rules_at(src, hot_policy());
        assert!(got.contains(&("panic-path", 2)));
        assert!(got.contains(&("lint-malformed", 2)));
    }

    #[test]
    fn unknown_rule_in_allow_is_malformed() {
        let src = "fn f() {} // taqos-lint: allow(no-such-rule) -- why\n";
        assert_eq!(rules_at(src, hot_policy()), [("lint-malformed", 1)]);
    }

    #[test]
    fn indexing_flagged_but_patterns_attrs_and_types_are_not() {
        let src = "#[derive(Debug)]\nstruct W([u32; 4]);\n\
                   fn f(v: &[u32; 4], i: usize) -> u32 {\n\
                   let [a, _b, _c, _d] = *v;\n    let x: [u32; 2] = [a, a];\n    v[i] + x[0]\n}\n";
        // Both index expressions share line 6; duplicates collapse per line.
        assert_eq!(rules_at(src, hot_policy()), [("panic-index", 6)]);
    }

    #[test]
    fn hot_alloc_needs_the_annotation() {
        let cold = "fn f() -> Vec<u32> { Vec::new() }\n";
        assert!(rules_at(cold, hot_policy()).is_empty());
        let hot = "// taqos-lint: hot\nfn f(s: &[u32]) -> Vec<u32> {\n    let _v = vec![1];\n    s.to_vec()\n}\n";
        assert_eq!(
            rules_at(hot, hot_policy()),
            [("hot-alloc", 3), ("hot-alloc", 4)]
        );
        let hot_new = "// taqos-lint: hot\nfn g() { let _v: Vec<u32> = Vec::new(); }\n";
        assert_eq!(rules_at(hot_new, hot_policy()), [("hot-alloc", 2)]);
    }

    #[test]
    fn float_fields_only_in_stats_structs() {
        let src = "struct FooStats { a: f64, b: u64 }\nstruct Summary { a: f64 }\n\
                   impl FooStats { fn avg(&self) -> f64 { 0.0 } }\n";
        assert_eq!(rules_at(src, hot_policy()), [("float-stats-field", 1)]);
    }

    #[test]
    fn hash_iter_respects_use_lines_and_crate_scope() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        assert_eq!(rules_at(src, hot_policy()), [("hash-iter", 2)]);
        let mut cold = hot_policy();
        cold.result_affecting = false;
        assert!(rules_at(src, cold).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(p: *const u32) -> u32 {\n\
                   unsafe { *p }\n    }\n}\n";
        assert_eq!(rules_at(src, hot_policy()), [("unsafe-no-safety", 4)]);
        let ok = "fn f(p: *const u32) -> u32 {\n    // SAFETY: caller promises p is valid\n\
                  unsafe { *p }\n}\n";
        assert!(rules_at(ok, hot_policy()).is_empty());
    }

    #[test]
    fn wall_clock_and_rng() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n";
        let got = rules_at(src, hot_policy());
        assert!(got.contains(&("wall-clock", 1)));
        assert!(got.contains(&("unseeded-rng", 1)));
        let mut bench = hot_policy();
        bench.wall_clock_exempt = true;
        assert!(!rules_at(src, bench).contains(&("wall-clock", 1)));
    }
}
