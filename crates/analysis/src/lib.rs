//! # taqos-analyze — workspace determinism & hot-path invariant linter
//!
//! Everything this repository claims — engine equivalence, exact-integer
//! stats, seeded fault/telemetry reproducibility — rests on invariants
//! that `rustc` cannot check: no iteration-order-dependent containers in
//! result-affecting code, no wall-clock reads outside the bench harness,
//! no unseeded randomness, no floats in accounting structs, no silent
//! panic paths or allocations on the per-cycle engine path. This crate is
//! the machine check for those conventions: an offline, zero-dependency
//! static analyzer (hand-rolled comment/string-aware lexer plus
//! lightweight scope tracking, in the spirit of `crates/compat`) that
//! walks the workspace `src` trees and enforces four lint families:
//!
//! 1. **determinism** — [`Rule::HashIter`], [`Rule::WallClock`],
//!    [`Rule::UnseededRng`], [`Rule::FloatStatsField`];
//! 2. **panic paths** — [`Rule::PanicPath`], [`Rule::PanicIndex`] in the
//!    hot-path modules;
//! 3. **hot-path allocation** — [`Rule::HotAlloc`] inside functions
//!    carrying the hot annotation;
//! 4. **unsafe hygiene** — [`Rule::UnsafeNoSafety`].
//!
//! Pre-existing violations live in a committed baseline
//! (`analysis-baseline.json`) compared by content fingerprint: CI fails on
//! any *new* violation, and the baseline may only shrink (see
//! [`Baseline`]). Per-site suppressions are spelled
//! `taqos-lint: allow(<rule>) -- <reason>` in a trailing or immediately
//! preceding line comment; the reason is mandatory. Functions are opted
//! into the allocation audit with a `taqos-lint: hot` comment directly
//! above them.
//!
//! ```text
//! cargo run -p taqos-analyze                      # full human report
//! cargo run -p taqos-analyze -- --check --baseline analysis-baseline.json
//! cargo run -p taqos-analyze -- --write-baseline analysis-baseline.json
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
pub mod json;
pub mod lexer;
pub mod report;
pub mod scan;
mod walk;

pub use baseline::{fingerprint, Baseline, Diff, Entry};
pub use scan::{FilePolicy, Rule, Violation};
pub use walk::rust_sources;

use std::path::{Path, PathBuf};

/// What to analyze and which policy applies where. [`Config::for_workspace`]
/// encodes this repository's layout; tests point the same rules at fixture
/// trees.
#[derive(Debug, Clone)]
pub struct Config {
    /// Workspace root; all reported paths are relative to it.
    pub root: PathBuf,
    /// Crate directories whose results feed `NetStats` equality, so
    /// iteration order must be deterministic (`hash-iter` applies).
    pub result_affecting: Vec<String>,
    /// Path suffixes of the per-cycle hot-path modules (`panic-path` and
    /// `panic-index` apply).
    pub hot_path_files: Vec<String>,
    /// Crate directories allowed to read the wall clock (the bench
    /// harness times real executions).
    pub wall_clock_exempt: Vec<String>,
}

impl Config {
    /// The policy for this repository.
    pub fn for_workspace(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            result_affecting: [
                "crates/netsim",
                "crates/topology",
                "crates/qos",
                "crates/core",
                "crates/telemetry",
            ]
            .map(String::from)
            .to_vec(),
            hot_path_files: [
                "crates/netsim/src/network.rs",
                "crates/netsim/src/port.rs",
                "crates/netsim/src/packet.rs",
                "crates/netsim/src/closed_loop.rs",
                "crates/netsim/src/fault.rs",
            ]
            .map(String::from)
            .to_vec(),
            wall_clock_exempt: ["crates/bench"].map(String::from).to_vec(),
        }
    }

    /// Derives the per-file policy for a root-relative path.
    pub fn policy_for(&self, rel_path: &str) -> FilePolicy {
        let crate_dir = crate_dir_of(rel_path);
        FilePolicy {
            result_affecting: self.result_affecting.iter().any(|c| c == crate_dir),
            wall_clock_exempt: self.wall_clock_exempt.iter().any(|c| c == crate_dir),
            hot_path: self.hot_path_files.iter().any(|f| rel_path == f),
        }
    }
}

/// The crate directory (`crates/<name>`) a root-relative path belongs to,
/// or `"."` for the root package.
fn crate_dir_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return &rel_path[.."crates/".len() + name.len()];
        }
    }
    "."
}

/// Analyzes every Rust source under the configured root and returns the
/// fingerprinted violation list, sorted by (file, line, rule).
pub fn analyze(config: &Config) -> Result<Vec<Violation>, String> {
    let mut violations = Vec::new();
    for rel in rust_sources(&config.root)? {
        let source =
            std::fs::read_to_string(config.root.join(&rel)).map_err(|e| format!("{rel}: {e}"))?;
        violations.extend(scan::scan_file(&rel, &source, config.policy_for(&rel)));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    fingerprint(&mut violations);
    Ok(violations)
}

/// Convenience for tests: analyze a root with this repository's policy.
pub fn analyze_root(root: impl AsRef<Path>) -> Result<Vec<Violation>, String> {
    analyze(&Config::for_workspace(root.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_dir_classification() {
        assert_eq!(
            crate_dir_of("crates/netsim/src/network.rs"),
            "crates/netsim"
        );
        assert_eq!(crate_dir_of("src/lib.rs"), ".");
    }

    #[test]
    fn workspace_policy_mapping() {
        let cfg = Config::for_workspace(".");
        let hot = cfg.policy_for("crates/netsim/src/network.rs");
        assert!(hot.hot_path && hot.result_affecting && !hot.wall_clock_exempt);
        let bench = cfg.policy_for("crates/bench/src/lib.rs");
        assert!(bench.wall_clock_exempt && !bench.result_affecting && !bench.hot_path);
        let qos = cfg.policy_for("crates/qos/src/pvc.rs");
        assert!(qos.result_affecting && !qos.hot_path);
    }
}
