//! Comment- and string-aware Rust lexer.
//!
//! The analyzer does not need a real parser: every rule it enforces can be
//! phrased over a flat token stream plus brace tracking, as long as the
//! lexer never mistakes the inside of a string literal or a comment for
//! code. That is the whole job of this module: split source text into
//! identifiers, punctuation and opaque literals, record the line of every
//! token, and collect comments (with their text) into a side channel so the
//! rule engine can read lint directives and `SAFETY:` justifications.
//!
//! Handled literal forms: line comments, nested block comments, string
//! literals with escapes, raw strings (`r"…"`, `r#"…"#`, any hash depth,
//! byte variants), character and byte literals, and lifetimes (which share
//! the quote character with char literals).

/// One lexed token. Literal payloads are dropped — no rule inspects the
/// contents of a string or number, only that it is not code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// A single punctuation byte.
    Punct(u8),
    /// String literal (normal, raw, or byte form).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime or loop label.
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// A comment with its text, kept out of the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (equal to `line` for `//` form).
    pub end_line: u32,
    /// Comment text without the `//` / `/*` delimiters, untrimmed.
    pub text: String,
    /// Whether code tokens precede the comment on its starting line.
    pub trailing: bool,
}

/// Result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes
/// become punctuation tokens, and unterminated literals run to end of file
/// (the compiler, not the linter, reports those).
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        last_code_line: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    /// Line of the most recent code token, for trailing-comment detection.
    last_code_line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                b if b.is_ascii_digit() => self.number(),
                _ => {
                    self.push(Tok::Punct(b));
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok) {
        self.last_code_line = self.line;
        self.out.tokens.push(Token {
            tok,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        let trailing = self.last_code_line == start_line;
        self.pos += 2;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.out.comments.push(Comment {
            line: start_line,
            end_line: start_line,
            text,
            trailing,
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let trailing = self.last_code_line == start_line;
        self.pos += 2;
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
            } else if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos.min(self.bytes.len())])
            .into_owned();
        self.pos = (self.pos + 2).min(self.bytes.len());
        self.out.comments.push(Comment {
            line: start_line,
            end_line: self.line,
            text,
            trailing,
        });
    }

    /// A `"`-delimited string with `\` escapes; may span lines.
    fn string(&mut self) {
        self.push(Tok::Str);
        self.pos += 1;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                // A line-continuation escape (`\` at end of line) consumes
                // the newline; it still has to count toward line numbering.
                b'\\' => {
                    if self.peek(1) == Some(b'\n') {
                        self.line += 1;
                    }
                    self.pos += 2;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// Either a lifetime (`'a`) or a char literal (`'x'`, `'\n'`).
    fn quote(&mut self) {
        let next = self.peek(1);
        let is_lifetime = matches!(next, Some(b) if b == b'_' || b.is_ascii_alphabetic())
            && self.peek(2) != Some(b'\'');
        if is_lifetime {
            self.push(Tok::Lifetime);
            self.pos += 2;
            while matches!(self.peek(0), Some(b) if b == b'_' || b.is_ascii_alphanumeric()) {
                self.pos += 1;
            }
            return;
        }
        self.push(Tok::Char);
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
        } else {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    /// Detects and consumes raw strings (`r"…"`, `r#"…"#`, `br"…"`) and byte
    /// strings (`b"…"`), which would otherwise lex as an identifier followed
    /// by a mis-delimited string. Returns false if the `r`/`b` at the cursor
    /// starts a plain identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let mut idx = self.pos;
        if self.bytes[idx] == b'b' {
            idx += 1;
        }
        let raw = self.bytes.get(idx) == Some(&b'r');
        if raw {
            idx += 1;
        }
        let mut hashes = 0usize;
        while self.bytes.get(idx) == Some(&b'#') {
            hashes += 1;
            idx += 1;
        }
        if self.bytes.get(idx) != Some(&b'"') || (!raw && hashes > 0) {
            return false;
        }
        if !raw {
            // Plain byte string `b"…"`: escapes apply, reuse the scanner.
            self.pos += 1;
            self.string();
            return true;
        }
        self.push(Tok::Str);
        self.pos = idx + 1;
        // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\n' {
                self.line += 1;
                self.pos += 1;
                continue;
            }
            if b == b'"' {
                let tail = &self.bytes[self.pos + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&h| h == b'#') {
                    self.pos += 1 + hashes;
                    return true;
                }
            }
            self.pos += 1;
        }
        true
    }

    fn ident(&mut self) {
        let start = self.pos;
        while matches!(self.peek(0), Some(b) if b == b'_' || b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Tok::Ident(text));
    }

    /// Numbers are consumed as opaque atoms. `1.5` lexes as `1` `.` `5`,
    /// which is fine: no rule looks inside numbers, and suffixed literals
    /// like `0_f64` stay numeric instead of producing a spurious `f64`
    /// identifier.
    fn number(&mut self) {
        while matches!(self.peek(0), Some(b) if b == b'_' || b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
        self.push(Tok::Num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_code() {
        let src = "let a = \"unwrap()\"; // unwrap()\n/* unwrap() */ let b = 1;";
        assert_eq!(idents(src), ["let", "a", "let", "b"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = "let s = r#\"has \" quote and unwrap()\"#; done();";
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(idents("f(b\"x\\\"y\"); g(br\"z\");"), ["f", "g"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.tok == Tok::Lifetime)
            .count();
        let chars = lexed.tokens.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn comment_lines_and_trailing_flags() {
        let src = "let x = 1; // trailing\n// own line\nlet y = 2;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].trailing);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(!lexed.comments[1].trailing);
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments_track_lines() {
        let src = "/* outer /* inner */\nstill comment */ let z = 3;";
        let lexed = lex(src);
        assert_eq!(lexed.comments[0].end_line, 2);
        assert_eq!(lexed.tokens[0].line, 2);
    }

    #[test]
    fn float_suffix_stays_numeric() {
        assert_eq!(idents("let x = 0_f64 + 1f32;"), ["let", "x"]);
    }

    #[test]
    fn line_continuation_escapes_count_toward_line_numbers() {
        // The `\` at end of line consumes the newline inside the literal;
        // tokens after the string must still land on the right line.
        let src = "let s = \"wrapped \\\n    tail\";\nlet next = 1;";
        let lexed = lex(src);
        let next = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(n) if n == "next"))
            .unwrap();
        assert_eq!(next.line, 3);
    }
}
