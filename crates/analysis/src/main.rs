//! `taqos-analyze` — command-line front end for the workspace linter.
//!
//! Modes:
//!
//! * default — print every violation (human diagnostic form) and exit
//!   non-zero if any exist;
//! * `--check --baseline <file>` — the CI gate: compare against the
//!   committed ratchet, print the delta, fail on new *or* resolved
//!   entries (the baseline may only shrink, so resolved entries require a
//!   rewrite);
//! * `--write-baseline <file>` — capture the current violation set;
//! * `--json [file]` — machine-readable violation dump (stdout or file).
//!
//! `--root <dir>` points the analyzer somewhere other than the current
//! directory.

use std::process::ExitCode;
use taqos_analyze::{analyze, report, Baseline, Config};

struct Cli {
    root: String,
    check: bool,
    baseline: Option<String>,
    write_baseline: Option<String>,
    json: Option<Option<String>>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: taqos-analyze [--root <dir>] [--check --baseline <file>] \
         [--write-baseline <file>] [--json [file]]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Cli, ()> {
    let mut cli = Cli {
        root: ".".to_string(),
        check: false,
        baseline: None,
        write_baseline: None,
        json: None,
    };
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => cli.root = args.next().ok_or(())?,
            "--check" => cli.check = true,
            "--baseline" => cli.baseline = Some(args.next().ok_or(())?),
            "--write-baseline" => cli.write_baseline = Some(args.next().ok_or(())?),
            "--json" => {
                let value = match args.peek() {
                    Some(next) if !next.starts_with("--") => Some(args.next().ok_or(())?),
                    _ => None,
                };
                cli.json = Some(value);
            }
            _ => return Err(()),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let Ok(cli) = parse_args() else {
        return usage();
    };
    let violations = match analyze(&Config::for_workspace(&cli.root)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("taqos-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(target) = &cli.json {
        let body = report::machine(&violations);
        match target {
            Some(path) => {
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("taqos-analyze: write {path}: {e}");
                    return ExitCode::from(2);
                }
            }
            None => print!("{body}"),
        }
    }

    if let Some(path) = &cli.write_baseline {
        let base = Baseline::from_violations(&violations);
        if let Err(e) = std::fs::write(path, base.to_json()) {
            eprintln!("taqos-analyze: write {path}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "taqos-analyze: wrote baseline with {} entries to {path}",
            base.entries.len()
        );
        return ExitCode::SUCCESS;
    }

    if cli.check {
        let Some(path) = &cli.baseline else {
            eprintln!("taqos-analyze: --check requires --baseline <file>");
            return usage();
        };
        let base = match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(src) => match Baseline::parse(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("taqos-analyze: parse {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("taqos-analyze: read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let diff = base.diff(&violations);
        print!("{}", report::delta(&diff, base.entries.len()));
        if !diff.new.is_empty() || !diff.resolved.is_empty() {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    if cli.json.is_none() {
        print!("{}", report::human(&violations));
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
