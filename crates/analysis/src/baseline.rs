//! The ratcheting baseline: known violations that are tolerated but may
//! only shrink.
//!
//! Each entry carries a content fingerprint rather than a bare line number,
//! so unrelated edits that shift lines do not churn the baseline: the
//! fingerprint hashes the file path, the rule, the whitespace-normalized
//! source line and a disambiguating occurrence index (for files with
//! several identical violating lines). Line numbers are stored for human
//! orientation only and are ignored by the comparison.
//!
//! The ratchet is two-sided:
//!
//! * a violation whose fingerprint is absent from the baseline is **new**
//!   and fails the check — nobody adds panic paths, hash maps or hot-path
//!   allocations without either fixing them or justifying them with an
//!   allow directive;
//! * a baseline entry with no matching violation is **resolved** and also
//!   fails the check until the baseline is regenerated — the committed
//!   file can never overstate the debt, so progress is permanent.

use crate::json::{self, Value};
use crate::scan::Violation;
use std::collections::BTreeSet;

/// One tolerated violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Path relative to the workspace root.
    pub file: String,
    /// Rule identifier.
    pub rule: String,
    /// Line at the time the baseline was written (informational).
    pub line: u32,
    /// Content fingerprint; the identity used for comparison.
    pub fingerprint: String,
}

/// A committed set of tolerated violations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Entries sorted by (file, line, rule).
    pub entries: Vec<Entry>,
}

/// Outcome of comparing current violations against a baseline.
#[derive(Debug, Default)]
pub struct Diff<'a> {
    /// Violations not present in the baseline: the check fails on any.
    pub new: Vec<&'a Violation>,
    /// Baseline entries no longer observed: the baseline must be rewritten
    /// (shrunk) before the check passes.
    pub resolved: Vec<Entry>,
}

impl Baseline {
    /// Captures the current violation set as the new baseline.
    pub fn from_violations(violations: &[Violation]) -> Baseline {
        let mut entries: Vec<Entry> = violations
            .iter()
            .map(|v| Entry {
                file: v.file.clone(),
                rule: v.rule.id().to_string(),
                line: v.line,
                fingerprint: v.fingerprint.clone(),
            })
            .collect();
        entries.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
        Baseline { entries }
    }

    /// Serializes to the committed JSON form (stable ordering, one entry
    /// per line so diffs in review show exactly which debt moved).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"total\": {},\n", self.entries.len()));
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"fingerprint\": \"{}\"}}{}\n",
                json::escape(&e.file),
                e.line,
                json::escape(&e.rule),
                json::escape(&e.fingerprint),
                if i + 1 == self.entries.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the committed JSON form.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let doc = json::parse(src)?;
        match doc.get("version").and_then(Value::as_u64) {
            Some(1) => {}
            other => return Err(format!("unsupported baseline version {other:?}")),
        }
        let Some(Value::Arr(items)) = doc.get("entries") else {
            return Err("baseline has no `entries` array".to_string());
        };
        let mut entries = Vec::with_capacity(items.len());
        for item in items {
            let field = |k: &str| {
                item.get(k)
                    .and_then(Value::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry missing string field `{k}`"))
            };
            entries.push(Entry {
                file: field("file")?,
                rule: field("rule")?,
                line: item
                    .get("line")
                    .and_then(Value::as_u64)
                    .ok_or("entry missing `line`")? as u32,
                fingerprint: field("fingerprint")?,
            });
        }
        Ok(Baseline { entries })
    }

    /// Compares current violations against this baseline by fingerprint.
    pub fn diff<'a>(&self, current: &'a [Violation]) -> Diff<'a> {
        let known: BTreeSet<&str> = self
            .entries
            .iter()
            .map(|e| e.fingerprint.as_str())
            .collect();
        let observed: BTreeSet<&str> = current.iter().map(|v| v.fingerprint.as_str()).collect();
        Diff {
            new: current
                .iter()
                .filter(|v| !known.contains(v.fingerprint.as_str()))
                .collect(),
            resolved: self
                .entries
                .iter()
                .filter(|e| !observed.contains(e.fingerprint.as_str()))
                .cloned()
                .collect(),
        }
    }
}

/// Fills the `fingerprint` field of every violation: FNV-1a over the file,
/// rule, normalized excerpt and an occurrence index that disambiguates
/// repeated identical lines within a file.
pub fn fingerprint(violations: &mut [Violation]) {
    use std::collections::BTreeMap;
    let mut occurrence: BTreeMap<(String, &'static str, String), u32> = BTreeMap::new();
    // Violations arrive sorted by file then line, so occurrence indices are
    // assigned in source order and stay stable under unrelated edits.
    for v in violations.iter_mut() {
        let normalized = v.excerpt.split_whitespace().collect::<Vec<_>>().join(" ");
        let key = (v.file.clone(), v.rule.id(), normalized.clone());
        let n = occurrence.entry(key).or_insert(0);
        let material = format!("{}\x1f{}\x1f{}\x1f{}", v.file, v.rule.id(), normalized, n);
        *n += 1;
        v.fingerprint = format!("{:016x}", fnv1a64(material.as_bytes()));
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::Rule;

    fn violation(file: &str, line: u32, excerpt: &str) -> Violation {
        Violation {
            file: file.to_string(),
            line,
            rule: Rule::PanicPath,
            message: "m".to_string(),
            excerpt: excerpt.to_string(),
            fingerprint: String::new(),
        }
    }

    #[test]
    fn fingerprints_survive_line_drift_but_split_duplicates() {
        let mut a = vec![
            violation("f.rs", 10, "x.unwrap()"),
            violation("f.rs", 20, "x.unwrap()"),
        ];
        let mut b = vec![
            violation("f.rs", 30, "x.unwrap()"),
            violation("f.rs", 44, "x.unwrap()"),
        ];
        fingerprint(&mut a);
        fingerprint(&mut b);
        // Same content at shifted lines: identical fingerprints, in order.
        assert_eq!(a[0].fingerprint, b[0].fingerprint);
        assert_eq!(a[1].fingerprint, b[1].fingerprint);
        // Two identical lines do not collapse into one identity.
        assert_ne!(a[0].fingerprint, a[1].fingerprint);
    }

    #[test]
    fn json_round_trip() {
        let mut v = vec![
            violation("a/b.rs", 3, "q[i]"),
            violation("a/b.rs", 9, "y.unwrap()"),
        ];
        fingerprint(&mut v);
        let base = Baseline::from_violations(&v);
        let parsed = Baseline::parse(&base.to_json()).unwrap();
        assert_eq!(parsed, base);
    }

    #[test]
    fn diff_reports_new_and_resolved() {
        let mut old = vec![
            violation("f.rs", 1, "a.unwrap()"),
            violation("f.rs", 2, "b.unwrap()"),
        ];
        fingerprint(&mut old);
        let base = Baseline::from_violations(&old);

        // One violation fixed, one introduced.
        let mut now = vec![
            violation("f.rs", 1, "a.unwrap()"),
            violation("f.rs", 7, "c.unwrap()"),
        ];
        fingerprint(&mut now);
        let diff = base.diff(&now);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.new[0].excerpt, "c.unwrap()");
        assert_eq!(diff.resolved.len(), 1);
        assert!(diff.resolved[0]
            .fingerprint
            .starts_with(|c: char| c.is_ascii_hexdigit()));

        // Unchanged set: clean diff.
        let clean = base.diff(&old);
        assert!(clean.new.is_empty() && clean.resolved.is_empty());
    }

    #[test]
    fn empty_baseline_flags_everything_as_new() {
        let mut now = vec![violation("f.rs", 1, "a.unwrap()")];
        fingerprint(&mut now);
        let diff = Baseline::default().diff(&now);
        assert_eq!(diff.new.len(), 1);
    }
}
