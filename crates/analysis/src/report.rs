//! Human and machine rendering of analysis results.

use crate::baseline::Diff;
use crate::scan::{Rule, Violation};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Renders violations in rustc-ish diagnostic style.
pub fn human(violations: &[Violation]) -> String {
    let mut out = String::new();
    for v in violations {
        let _ = writeln!(out, "error[{}]: {}", v.rule.id(), v.message);
        let _ = writeln!(out, "  --> {}:{}", v.file, v.line);
        if !v.excerpt.is_empty() {
            let _ = writeln!(out, "   |     {}", v.excerpt);
        }
        let _ = writeln!(out, "   = help: {}", v.rule.help());
    }
    out.push_str(&summary(violations));
    out
}

/// One-paragraph totals, per rule.
pub fn summary(violations: &[Violation]) -> String {
    if violations.is_empty() {
        return "taqos-analyze: clean — no violations\n".to_string();
    }
    let mut per_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut files: BTreeMap<&str, ()> = BTreeMap::new();
    for v in violations {
        *per_rule.entry(v.rule.id()).or_insert(0) += 1;
        files.insert(&v.file, ());
    }
    let mut out = format!(
        "taqos-analyze: {} violation(s) in {} file(s):",
        violations.len(),
        files.len()
    );
    // Report in fixed rule order rather than alphabetically.
    for rule in Rule::ALL {
        if let Some(n) = per_rule.get(rule.id()) {
            let _ = write!(out, " {}={}", rule.id(), n);
        }
    }
    out.push('\n');
    out
}

/// Machine-readable violation dump (a JSON array, one object per line).
pub fn machine(violations: &[Violation]) -> String {
    use crate::json::escape;
    let mut out = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        let _ = write!(
            out,
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \
             \"excerpt\": \"{}\", \"fingerprint\": \"{}\"}}",
            escape(&v.file),
            v.line,
            escape(v.rule.id()),
            escape(&v.message),
            escape(&v.excerpt),
            escape(&v.fingerprint),
        );
        out.push_str(if i + 1 == violations.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    out.push_str("]\n");
    out
}

/// Renders a baseline comparison: the delta CI prints on every run.
pub fn delta(diff: &Diff<'_>, baseline_len: usize) -> String {
    let mut out = String::new();
    for v in &diff.new {
        let _ = writeln!(
            out,
            "NEW  error[{}]: {} at {}:{}",
            v.rule.id(),
            v.message,
            v.file,
            v.line
        );
        if !v.excerpt.is_empty() {
            let _ = writeln!(out, "     {}", v.excerpt);
        }
        let _ = writeln!(out, "     = help: {}", v.rule.help());
    }
    for e in &diff.resolved {
        let _ = writeln!(
            out,
            "RESOLVED [{}] {}:{} — shrink the baseline with --write-baseline",
            e.rule, e.file, e.line
        );
    }
    let _ = writeln!(
        out,
        "taqos-analyze --check: {} new, {} resolved (baseline {} -> {})",
        diff.new.len(),
        diff.resolved.len(),
        baseline_len,
        baseline_len - diff.resolved.len(),
    );
    out
}
