//! Fault-aware route recomputation.
//!
//! Given a built [`NetworkSpec`] and a set of *permanent* hard faults (dead
//! directed links and dead routers), [`reroute_around_faults`] rewrites the
//! routing tables so surviving traffic detours around the failures: for each
//! destination it runs a backward breadth-first search from the routers that
//! can eject to that destination, over only the live edges whose target
//! covers the destination, and re-points every reachable router at a
//! shortest live next hop.
//!
//! Three properties matter for the robustness experiments:
//!
//! * **Fault-free no-op** — on a healthy fabric every original route is
//!   already a shortest path over the live graph, so the original candidate
//!   ports are kept verbatim and the spec is bit-identical to the unrouted
//!   build. Installing the reroute pass unconditionally costs nothing.
//! * **Coverage-aware** — MECS express channels are point-to-multipoint; an
//!   output port is only considered for a destination the port's target
//!   coverage actually reaches (mirroring the engine's target resolution),
//!   so a detour never steers a packet onto a channel that cannot drop it
//!   off.
//! * **Honest unreachability** — destinations cut off by the fault set keep
//!   their original routes and are reported in the summary; the fault layer
//!   then drops and accounts that traffic (abandoned after the retransmit
//!   budget) instead of the route pass silently black-holing it.
//!
//! Detour routes are shortest-path but no longer dimension-ordered, so they
//! can in principle form adaptive-routing cycles; the engine's progress
//! watchdog converts any resulting deadlock into a structured error rather
//! than a hang. Input ports with a `fixed_route` (DPS pass-through segments)
//! bypass routing tables entirely and are out of scope for this pass.

use std::collections::{BTreeSet, VecDeque};
use taqos_netsim::ids::NodeId;
use taqos_netsim::spec::{NetworkSpec, TargetEndpoint};

/// Outcome of a [`reroute_around_faults`] pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RerouteSummary {
    /// Routing-table entries whose candidate ports changed.
    pub rerouted_entries: usize,
    /// `(router index, destination)` pairs for which no live path exists;
    /// their original routes were kept and the fault layer will drop the
    /// traffic.
    pub unreachable: Vec<(usize, NodeId)>,
}

impl RerouteSummary {
    /// Whether the pass changed nothing and cut off nothing — the guaranteed
    /// outcome on a fault-free fabric.
    pub fn is_noop(&self) -> bool {
        self.rerouted_entries == 0 && self.unreachable.is_empty()
    }
}

/// Whether output port `out` of a router may carry a packet destined to
/// `dst`, mirroring the engine's target resolution: a single target with
/// empty coverage reaches everything; otherwise some target must cover
/// `dst` explicitly.
fn port_covers(outputs: &taqos_netsim::spec::OutputPortSpec, dst: NodeId) -> Option<usize> {
    if outputs.targets.len() == 1 && outputs.targets[0].covers.is_empty() {
        return Some(0);
    }
    outputs.targets.iter().position(|t| t.covers.contains(&dst))
}

/// Rewrites `spec`'s routing tables to detour around the given permanent
/// hard faults (`dead_links` as `(router, out_port)` pairs, `dead_routers`
/// as router indices), typically obtained from
/// `FaultPlan::permanent_hard_faults`. Returns a summary of how much
/// changed; with no faults the pass is a guaranteed no-op.
pub fn reroute_around_faults(
    spec: &mut NetworkSpec,
    dead_links: &[(usize, usize)],
    dead_routers: &[usize],
) -> RerouteSummary {
    let n = spec.routers.len();
    let mut router_dead = vec![false; n];
    for &r in dead_routers {
        if let Some(flag) = router_dead.get_mut(r) {
            *flag = true;
        }
    }
    let mut link_dead: Vec<Vec<bool>> = spec
        .routers
        .iter()
        .map(|r| vec![false; r.outputs.len()])
        .collect();
    for &(r, o) in dead_links {
        if let Some(flag) = link_dead.get_mut(r).and_then(|p| p.get_mut(o)) {
            *flag = true;
        }
    }

    let destinations: BTreeSet<NodeId> = spec
        .routers
        .iter()
        .flat_map(|r| r.route_table.keys().copied())
        .collect();

    let mut summary = RerouteSummary::default();
    for &dst in &destinations {
        // Distance (in router hops) to a live router that can eject to dst.
        const UNREACHED: u32 = u32::MAX;
        let mut dist = vec![UNREACHED; n];
        // Reverse adjacency restricted to edges usable for dst: for each
        // live downstream router, the live (router, port) pairs reaching it.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut queue = VecDeque::new();
        for (ri, router) in spec.routers.iter().enumerate() {
            if router_dead[ri] {
                continue;
            }
            for (oi, out) in router.outputs.iter().enumerate() {
                if link_dead[ri][oi] {
                    continue;
                }
                let Some(ti) = port_covers(out, dst) else {
                    continue;
                };
                match out.targets[ti].endpoint {
                    TargetEndpoint::Sink { sink } => {
                        if spec.sinks[sink].node == dst && dist[ri] != 0 {
                            dist[ri] = 0;
                            queue.push_back(ri);
                        }
                    }
                    TargetEndpoint::Router { router: next, .. } => {
                        if !router_dead[next] {
                            rev[next].push(ri);
                        }
                    }
                }
            }
        }
        while let Some(r) = queue.pop_front() {
            let d = dist[r] + 1;
            for &up in &rev[r] {
                if dist[up] > d {
                    dist[up] = d;
                    queue.push_back(up);
                }
            }
        }

        for ri in 0..n {
            if router_dead[ri] || dist[ri] == 0 {
                continue;
            }
            if !spec.routers[ri].route_table.contains_key(&dst) {
                continue;
            }
            if dist[ri] == UNREACHED {
                summary.unreachable.push((ri, dst));
                continue;
            }
            // Every live out port whose next hop lies on a shortest path.
            let candidates: Vec<taqos_netsim::ids::OutPortId> = spec.routers[ri]
                .outputs
                .iter()
                .enumerate()
                .filter(|&(oi, _)| !link_dead[ri][oi])
                .filter_map(|(oi, out)| {
                    let ti = port_covers(out, dst)?;
                    match out.targets[ti].endpoint {
                        TargetEndpoint::Router { router: next, .. }
                            if !router_dead[next] && dist[next] == dist[ri] - 1 =>
                        {
                            Some(taqos_netsim::ids::OutPortId(oi))
                        }
                        _ => None,
                    }
                })
                .collect();
            debug_assert!(!candidates.is_empty(), "finite distance implies a next hop");
            let entry = spec.routers[ri]
                .route_table
                .get_mut(&dst)
                .expect("checked above");
            // Keep the original candidate ports that are still shortest
            // (preserving replication and round-robin order — and making the
            // whole pass a no-op on a healthy fabric); otherwise detour.
            let kept: Vec<_> = entry
                .iter()
                .copied()
                .filter(|p| candidates.contains(p))
                .collect();
            let new_entry = if kept.is_empty() { candidates } else { kept };
            if *entry != new_entry {
                *entry = new_entry;
                summary.rerouted_entries += 1;
            }
        }
    }
    summary
}

/// Picks a surviving sibling controller for each requester whose assigned
/// controller node is permanently dark: returns the live controller node
/// (drawn from `controllers`, skipping every node in `dark`) closest to
/// `preferred` by index distance, or `None` when every controller is dark.
pub fn failover_controller(
    preferred: NodeId,
    controllers: &[NodeId],
    dark: &[NodeId],
) -> Option<NodeId> {
    if !dark.contains(&preferred) {
        return Some(preferred);
    }
    controllers
        .iter()
        .copied()
        .filter(|c| !dark.contains(c))
        .min_by_key(|c| (c.index().abs_diff(preferred.index()), c.index()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh2d::Mesh2dConfig;
    use taqos_netsim::ids::OutPortId;

    #[test]
    fn fault_free_reroute_is_a_noop() {
        let mut spec = Mesh2dConfig::paper_8x8().build();
        let original = spec.clone();
        let summary = reroute_around_faults(&mut spec, &[], &[]);
        assert!(summary.is_noop());
        assert_eq!(spec, original, "no faults must leave the spec untouched");
    }

    /// Index of the output port of `spec.routers[router]` sending in `dir`.
    fn network_out(spec: &NetworkSpec, router: usize, dir: taqos_netsim::ids::Direction) -> usize {
        spec.routers[router]
            .outputs
            .iter()
            .position(|o| {
                matches!(o.kind, taqos_netsim::spec::OutputKind::Network { dir: d, .. } if d == dir)
            })
            .expect("port exists")
    }

    #[test]
    fn dead_link_detours_and_keeps_spec_valid() {
        let config = Mesh2dConfig::paper_8x8();
        let mut spec = config.build();
        // Kill the eastbound link out of node (0,0): routes from router 0
        // to every node east of it must detour (south first).
        let east = network_out(&spec, 0, taqos_netsim::ids::Direction::East);
        let original_entry = spec.routers[0]
            .route_table
            .get(&config.node_at(7, 0))
            .cloned()
            .expect("mesh routes everywhere");
        assert_eq!(original_entry, vec![OutPortId(east)]);
        let summary = reroute_around_faults(&mut spec, &[(0, east)], &[]);
        assert!(summary.rerouted_entries > 0);
        assert!(summary.unreachable.is_empty(), "mesh stays connected");
        let detour = spec.routers[0]
            .route_table
            .get(&config.node_at(7, 0))
            .expect("entry survives");
        assert!(
            !detour.contains(&OutPortId(east)),
            "detour must avoid the dead link, got {detour:?}"
        );
        spec.validate()
            .expect("rerouted spec stays structurally valid");
    }

    #[test]
    fn dead_router_reroutes_neighbours_and_reports_cut_off_destination() {
        let config = Mesh2dConfig::paper_8x8();
        let mut spec = config.build();
        // Kill the router at (3,3); its own node becomes unreachable, and
        // XY paths through it must bend around.
        let dead = config.node_at(3, 3).index();
        let summary = reroute_around_faults(&mut spec, &[], &[dead]);
        assert!(summary.rerouted_entries > 0);
        let dead_node = config.node_at(3, 3);
        assert!(
            summary.unreachable.iter().any(|&(_, d)| d == dead_node),
            "the dead router's own terminal is cut off"
        );
        assert!(
            summary
                .unreachable
                .iter()
                .all(|&(ri, d)| ri == dead || d == dead_node),
            "only the dead node itself may be unreachable on a mesh: {:?}",
            summary.unreachable
        );
        spec.validate()
            .expect("rerouted spec stays structurally valid");
    }

    #[test]
    fn multidrop_express_channels_respect_coverage() {
        let config = crate::chip::ChipConfig::paper_8x8();
        let mut chip = config.build();
        let original = chip.spec.clone();
        let summary = reroute_around_faults(&mut chip.spec, &[], &[]);
        assert!(summary.is_noop(), "healthy chip fabric must be untouched");
        assert_eq!(chip.spec, original);
    }

    #[test]
    fn failover_prefers_live_sibling() {
        let controllers = [NodeId(4), NodeId(12), NodeId(20)];
        assert_eq!(
            failover_controller(NodeId(4), &controllers, &[]),
            Some(NodeId(4))
        );
        assert_eq!(
            failover_controller(NodeId(4), &controllers, &[NodeId(4)]),
            Some(NodeId(12))
        );
        assert_eq!(
            failover_controller(NodeId(12), &controllers, &[NodeId(12), NodeId(4)]),
            Some(NodeId(20))
        );
        assert_eq!(
            failover_controller(
                NodeId(4),
                &controllers,
                &[NodeId(4), NodeId(12), NodeId(20)]
            ),
            None
        );
    }
}
