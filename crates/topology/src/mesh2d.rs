//! Two-dimensional mesh topology builder.
//!
//! The paper's chip model is an 8×8 grid of concentrated routers; the column
//! builders in [`crate::column`] model only the QOS-protected shared column
//! of that chip. This module builds a full two-dimensional mesh
//! [`NetworkSpec`] — XY dimension-order routed, one terminal injector and one
//! ejection sink per node — so chip-scale workloads (and the
//! `bench_netsim` throughput harness's `mesh_8x8` case) can run on the same
//! generic router engine.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use taqos_netsim::spec::{
    InputPortSpec, NetworkSpec, OutputPortSpec, RouterSpec, SinkSpec, SourceSpec, TargetEndpoint,
    TargetSpec, VcConfig,
};
use taqos_netsim::{Direction, FlowId, InPortId, NodeId, OutPortId};

/// Configuration of a two-dimensional mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh2dConfig {
    /// Nodes per row.
    pub width: usize,
    /// Nodes per column.
    pub height: usize,
    /// Virtual channels at each injection port.
    pub injection_vcs: u8,
    /// Virtual channels at each network input port.
    pub network_vcs: u8,
    /// VC depth in flits (virtual cut-through: at least the longest packet).
    pub vc_depth: u8,
    /// Ejection slots at each terminal.
    pub ejection_slots: u8,
    /// Outstanding-packet window per source.
    pub source_window: usize,
    /// Channel width in bytes.
    pub flit_bytes: u32,
}

impl Default for Mesh2dConfig {
    fn default() -> Self {
        Mesh2dConfig {
            width: 8,
            height: 8,
            injection_vcs: 2,
            network_vcs: 4,
            vc_depth: 4,
            ejection_slots: 2,
            source_window: 16,
            flit_bytes: 16,
        }
    }
}

/// Grid-geometry helpers shared by the plain mesh and the hybrid chip
/// builder ([`crate::chip`]), so the XY substrate is defined exactly once.
pub(crate) mod grid_geometry {
    use super::Direction;
    use taqos_netsim::NodeId;

    /// The upstream neighbour of `(x, y)` on a `width`×`height` grid whose
    /// traffic arrives travelling in `dir`, if it exists. Travelling East
    /// arrives from the western neighbour, etc. Per `Direction`'s
    /// convention, South travels towards increasing row index.
    pub(crate) fn upstream(
        width: usize,
        height: usize,
        x: usize,
        y: usize,
        dir: Direction,
    ) -> Option<(usize, usize)> {
        match dir {
            Direction::East if x > 0 => Some((x - 1, y)),
            Direction::West if x + 1 < width => Some((x + 1, y)),
            Direction::South if y > 0 => Some((x, y - 1)),
            Direction::North if y + 1 < height => Some((x, y + 1)),
            _ => None,
        }
    }

    /// The downstream neighbour of `(x, y)` reached by sending in `dir`, if
    /// it exists.
    pub(crate) fn downstream(
        width: usize,
        height: usize,
        x: usize,
        y: usize,
        dir: Direction,
    ) -> Option<(usize, usize)> {
        match dir {
            Direction::East if x + 1 < width => Some((x + 1, y)),
            Direction::West if x > 0 => Some((x - 1, y)),
            Direction::South if y + 1 < height => Some((x, y + 1)),
            Direction::North if y > 0 => Some((x, y - 1)),
            _ => None,
        }
    }

    /// XY dimension-order routing: the direction a packet at `(x, y)` headed
    /// for `dst` (row-major on a `width`-wide grid) takes next, or `None` if
    /// it ejects here.
    pub(crate) fn xy_direction(width: usize, x: usize, y: usize, dst: NodeId) -> Option<Direction> {
        let (dx, dy) = (dst.index() % width, dst.index() / width);
        if dx > x {
            Some(Direction::East)
        } else if dx < x {
            Some(Direction::West)
        } else if dy > y {
            Some(Direction::South)
        } else if dy < y {
            Some(Direction::North)
        } else {
            None
        }
    }
}

impl Mesh2dConfig {
    /// The paper's chip-scale grid: an 8×8 mesh.
    pub fn paper_8x8() -> Self {
        Self::default()
    }

    /// A custom-sized mesh with the default port provisioning.
    pub fn with_size(width: usize, height: usize) -> Self {
        Mesh2dConfig {
            width,
            height,
            ..Self::default()
        }
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// Node identifier of grid position `(x, y)` (row-major).
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId((y * self.width + x) as u16)
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.width, node / self.width)
    }

    /// The upstream neighbour whose traffic arrives travelling in `dir`, if
    /// it exists. Travelling East arrives from the western neighbour, etc.
    fn upstream(&self, x: usize, y: usize, dir: Direction) -> Option<(usize, usize)> {
        grid_geometry::upstream(self.width, self.height, x, y, dir)
    }

    /// The downstream neighbour reached by sending in `dir`, if it exists.
    fn downstream(&self, x: usize, y: usize, dir: Direction) -> Option<(usize, usize)> {
        grid_geometry::downstream(self.width, self.height, x, y, dir)
    }

    /// Input port index at `(x, y)` receiving traffic travelling in `dir`
    /// (port 0 is the injection port).
    fn input_index(&self, x: usize, y: usize, dir: Direction) -> Option<usize> {
        self.upstream(x, y, dir)?;
        let mut idx = 1;
        for d in Direction::all() {
            if d == dir {
                return Some(idx);
            }
            if self.upstream(x, y, d).is_some() {
                idx += 1;
            }
        }
        None
    }

    /// Output port index at `(x, y)` sending in `dir` (the ejection port
    /// comes after all network outputs).
    fn output_index(&self, x: usize, y: usize, dir: Direction) -> Option<usize> {
        self.downstream(x, y, dir)?;
        let mut idx = 0;
        for d in Direction::all() {
            if d == dir {
                return Some(idx);
            }
            if self.downstream(x, y, d).is_some() {
                idx += 1;
            }
        }
        None
    }

    /// XY dimension-order routing: the direction a packet at `(x, y)` headed
    /// for `dst` takes next, or `None` if it ejects here.
    fn xy_direction(&self, x: usize, y: usize, dst: NodeId) -> Option<Direction> {
        grid_geometry::xy_direction(self.width, x, y, dst)
    }

    /// Builds the mesh specification.
    pub fn build(&self) -> NetworkSpec {
        assert!(
            self.width >= 1 && self.height >= 1,
            "mesh must be non-empty"
        );
        assert!(
            self.num_nodes() <= usize::from(u16::MAX),
            "mesh exceeds the NodeId range"
        );
        let net_vcs = VcConfig::new(self.network_vcs, self.vc_depth);
        let inj_vcs = VcConfig::new(self.injection_vcs, self.vc_depth);
        let mut routers = Vec::with_capacity(self.num_nodes());
        for node in 0..self.num_nodes() {
            let (x, y) = self.coords(node);
            let mut inputs = vec![InputPortSpec::injection("term", inj_vcs, 0)];
            let mut group = 1u8;
            for dir in Direction::all() {
                if let Some((ux, uy)) = self.upstream(x, y, dir) {
                    inputs.push(InputPortSpec::network(
                        format!("in_{dir}"),
                        self.node_at(ux, uy),
                        dir,
                        0,
                        net_vcs,
                        group,
                    ));
                    group += 1;
                }
            }
            let mut outputs = Vec::new();
            for dir in Direction::all() {
                if let Some((dx, dy)) = self.downstream(x, y, dir) {
                    let neighbour = self.node_at(dx, dy).index();
                    let in_port = self
                        .input_index(dx, dy, dir)
                        .expect("downstream neighbour has a matching input");
                    outputs.push(OutputPortSpec::network(
                        format!("out_{dir}"),
                        dir,
                        0,
                        vec![TargetSpec::single(
                            TargetEndpoint::Router {
                                router: neighbour,
                                in_port: InPortId(in_port),
                            },
                            1,
                        )],
                    ));
                }
            }
            outputs.push(OutputPortSpec::ejection("eject", node, 0));
            let eject_port = OutPortId(outputs.len() - 1);
            let mut route_table = BTreeMap::new();
            for dst in 0..self.num_nodes() {
                let dst = NodeId(dst as u16);
                let out = match self.xy_direction(x, y, dst) {
                    Some(dir) => OutPortId(
                        self.output_index(x, y, dir)
                            .expect("XY routing only uses existing links"),
                    ),
                    None => eject_port,
                };
                route_table.insert(dst, vec![out]);
            }
            routers.push(RouterSpec {
                node: NodeId(node as u16),
                inputs,
                outputs,
                route_table,
                va_latency: 1,
                xt_latency: 1,
            });
        }
        let sources = (0..self.num_nodes())
            .map(|node| SourceSpec {
                flow: FlowId(node as u16),
                node: NodeId(node as u16),
                router: node,
                in_port: InPortId(0),
                name: format!("n{node}.term"),
                window: self.source_window,
            })
            .collect();
        let sinks = (0..self.num_nodes())
            .map(|node| SinkSpec {
                node: NodeId(node as u16),
                name: format!("n{node}.sink"),
                slots: self.ejection_slots,
            })
            .collect();
        NetworkSpec {
            name: format!("mesh2d_{}x{}", self.width, self.height),
            routers,
            sources,
            sinks,
            flit_bytes: self.flit_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mesh_is_structurally_valid() {
        let config = Mesh2dConfig::paper_8x8();
        let spec = config.build();
        assert!(spec.validate().is_ok(), "{:?}", spec.validate());
        assert_eq!(spec.routers.len(), 64);
        assert_eq!(spec.sources.len(), 64);
        assert_eq!(spec.sinks.len(), 64);
        assert_eq!(spec.name, "mesh2d_8x8");
    }

    #[test]
    fn corner_edge_and_inner_router_degrees() {
        let config = Mesh2dConfig::paper_8x8();
        let spec = config.build();
        // Corner (0,0): 2 links; edge (1,0): 3 links; inner (1,1): 4 links.
        assert_eq!(spec.routers[0].inputs.len(), 1 + 2);
        assert_eq!(spec.routers[0].outputs.len(), 2 + 1);
        assert_eq!(spec.routers[1].inputs.len(), 1 + 3);
        assert_eq!(spec.routers[9].inputs.len(), 1 + 4);
        assert_eq!(spec.routers[9].outputs.len(), 4 + 1);
    }

    #[test]
    fn xy_routes_follow_dimension_order() {
        let config = Mesh2dConfig::with_size(4, 4);
        // From (0,0) to (2,1): first X (East), then Y.
        assert_eq!(
            config.xy_direction(0, 0, config.node_at(2, 1)),
            Some(Direction::East)
        );
        assert_eq!(
            config.xy_direction(2, 0, config.node_at(2, 1)),
            Some(Direction::South)
        );
        assert_eq!(config.xy_direction(2, 1, config.node_at(2, 1)), None);
        // Every router can route to every destination.
        let spec = config.build();
        for router in &spec.routers {
            for dst in 0..config.num_nodes() {
                assert!(router.route_table.contains_key(&NodeId(dst as u16)));
            }
        }
    }

    #[test]
    fn degenerate_single_row_mesh_builds() {
        let config = Mesh2dConfig::with_size(4, 1);
        let spec = config.build();
        assert!(spec.validate().is_ok());
        assert_eq!(spec.routers.len(), 4);
        // End routers have one link, middle routers two.
        assert_eq!(spec.routers[0].outputs.len(), 1 + 1);
        assert_eq!(spec.routers[1].outputs.len(), 2 + 1);
    }
}
