//! # taqos-topology — network topologies for the QOS-enabled shared region
//!
//! Topology construction and analysis for the TAQOS reproduction of
//! *"Topology-aware Quality-of-Service Support in Highly Integrated Chip
//! Multiprocessors"*:
//!
//! * [`column`](mod@column) — the five shared-region column topologies (mesh x1/x2/x4,
//!   MECS, and the paper's new Destination Partitioned Subnets), emitted as
//!   [`taqos_netsim::spec::NetworkSpec`]s with the router parameters of
//!   Table 1;
//! * [`geometry`] — per-topology router geometry (crossbar dimensions, buffer
//!   capacities, flow-table sizes, input-wire sharing) that drives the area
//!   and energy models;
//! * [`properties`] — closed-form bisection bandwidth, zero-load latency and
//!   average hop counts;
//! * [`grid`] — chip-level primitives (8x8 concentrated grid, XY
//!   dimension-order routing, MECS single-hop reachability, convex-region
//!   checks) used by the chip-level architecture in `taqos-core`;
//! * [`mesh2d`] — the plain two-dimensional XY mesh;
//! * [`chip`] — the hybrid chip fabric: the 2-D mesh plus per-row MECS
//!   express channels into the QOS-protected shared columns;
//! * [`reroute`] — fault-aware route recomputation: detours routing tables
//!   around permanently dead links and routers and fails requesters over to
//!   surviving sibling memory controllers.
//!
//! ## Example
//!
//! ```rust
//! use taqos_topology::prelude::*;
//!
//! let config = ColumnConfig::paper();
//! let spec = ColumnTopology::Dps.build(&config);
//! assert_eq!(spec.routers.len(), 8);
//! assert_eq!(spec.sources.len(), 64);
//!
//! // MECS, DPS and mesh x4 have equal bisection bandwidth.
//! assert_eq!(
//!     bisection_channels(ColumnTopology::Dps, 8),
//!     bisection_channels(ColumnTopology::MeshX4, 8),
//! );
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chip;
pub mod column;
pub mod geometry;
pub mod grid;
pub mod mesh2d;
pub mod properties;
pub mod reroute;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::chip::{ChipConfig, ChipSpec};
    pub use crate::column::{ColumnConfig, ColumnTopology, TopologyParams};
    pub use crate::geometry::{geometry_from_spec, router_geometry, RouterGeometry};
    pub use crate::grid::{ChipGrid, Coord};
    pub use crate::mesh2d::Mesh2dConfig;
    pub use crate::properties::{
        bisection_bandwidth_bytes, bisection_channels, tornado_avg_hops, uniform_random_avg_hops,
        zero_load_latency, zero_load_latency_tornado, zero_load_latency_uniform,
    };
    pub use crate::reroute::{failover_controller, reroute_around_faults, RerouteSummary};
}

pub use prelude::*;
