//! Router geometry: the structural quantities that drive area and energy.
//!
//! The power model (`taqos-power`) needs, per topology, the crossbar
//! dimensions, buffer capacities, flow-state table sizes, and the degree of
//! crossbar input sharing (which determines the length of the input wires
//! feeding the switch — the dominant term of MECS switch energy). These are
//! derived from the generated [`NetworkSpec`]s so that the area/energy
//! figures always reflect exactly the simulated configuration.

use crate::column::{ColumnConfig, ColumnTopology};
use serde::{Deserialize, Serialize};
use taqos_netsim::spec::{InputKind, NetworkSpec};

/// Virtual channels provisioned on each row input in the full chip (row
/// channels are MECS channels and are buffered like MECS column ports). This
/// buffering is identical across the evaluated column topologies and appears
/// as the constant "row input" component of Figure 3.
pub const ROW_INPUT_VCS: u32 = 14;
/// Flits per row-input virtual channel.
pub const ROW_INPUT_VC_DEPTH: u32 = 4;

/// Structural quantities of one (average) router of a column topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterGeometry {
    /// Crossbar input ports (injection groups plus column input groups).
    pub xbar_inputs: f64,
    /// Crossbar output ports (ejection, column outputs, and the east/west
    /// outputs that carry replies back out of the column).
    pub xbar_outputs: f64,
    /// Column (network) input buffer capacity in flits.
    pub column_buffer_flits: f64,
    /// Row-input and terminal buffer capacity in flits (identical across
    /// topologies).
    pub row_buffer_flits: f64,
    /// Flow-state table entries (bandwidth counters) per router.
    pub flow_table_entries: f64,
    /// Largest number of input ports multiplexed onto one crossbar input
    /// port; proxies the length of the wires feeding the crossbar.
    pub max_ports_per_xbar_input: f64,
    /// Channel (flit) width in bits.
    pub flit_bits: u32,
}

impl RouterGeometry {
    /// Total input buffer capacity in flits (row plus column).
    pub fn total_buffer_flits(&self) -> f64 {
        self.column_buffer_flits + self.row_buffer_flits
    }

    /// Total input buffer capacity in bits.
    pub fn total_buffer_bits(&self) -> f64 {
        self.total_buffer_flits() * f64::from(self.flit_bits)
    }
}

/// Number of outputs leaving the column sideways (east, west) that exist in
/// the full chip but are not exercised by the column simulation; they still
/// occupy crossbar ports and are included in the crossbar dimensions.
const SIDE_OUTPUTS: f64 = 2.0;

/// Derives the average router geometry of a column topology.
pub fn router_geometry(topology: ColumnTopology, config: &ColumnConfig) -> RouterGeometry {
    let spec = topology.build(config);
    geometry_from_spec(topology, config, &spec)
}

/// Derives the average router geometry from an already-built specification.
pub fn geometry_from_spec(
    topology: ColumnTopology,
    config: &ColumnConfig,
    spec: &NetworkSpec,
) -> RouterGeometry {
    let n = spec.routers.len() as f64;
    let mut xbar_inputs = 0.0;
    let mut xbar_outputs = 0.0;
    let mut column_buffer_flits = 0.0;
    let mut flow_table_entries = 0.0;
    let mut max_sharing: usize = 1;

    for router in &spec.routers {
        xbar_inputs += router.xbar_input_groups() as f64;
        xbar_outputs += router.xbar_output_ports() as f64 + SIDE_OUTPUTS;
        column_buffer_flits += router
            .inputs
            .iter()
            .filter(|p| matches!(p.kind, InputKind::Network { .. }))
            .map(|p| f64::from(p.vcs.capacity_flits()))
            .sum::<f64>();
        // Flow state: one bandwidth counter per flow; DPS source routers keep
        // utilisation per output port (one table per subnet output).
        let tables = match topology {
            ColumnTopology::Dps => router.xbar_output_ports() as f64,
            _ => 1.0,
        };
        flow_table_entries += spec.num_flows() as f64 * tables;
        // Crossbar input sharing: count non-pass-through ports per group.
        let mut per_group: std::collections::BTreeMap<u8, usize> =
            std::collections::BTreeMap::new();
        for port in router.inputs.iter().filter(|p| !p.passthrough) {
            *per_group.entry(port.xbar_group).or_insert(0) += 1;
        }
        if let Some(&m) = per_group.values().max() {
            max_sharing = max_sharing.max(m);
        }
    }

    let row_buffer_flits = (config.row_inputs_east + config.row_inputs_west) as f64
        * f64::from(ROW_INPUT_VCS * ROW_INPUT_VC_DEPTH)
        + f64::from(config.injection_vcs) * 4.0;

    RouterGeometry {
        xbar_inputs: xbar_inputs / n,
        xbar_outputs: xbar_outputs / n,
        column_buffer_flits: column_buffer_flits / n,
        row_buffer_flits,
        flow_table_entries: flow_table_entries / n,
        max_ports_per_xbar_input: max_sharing as f64,
        flit_bits: spec.flit_bytes * 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo(t: ColumnTopology) -> RouterGeometry {
        router_geometry(t, &ColumnConfig::paper())
    }

    #[test]
    fn crossbar_dimensions_match_paper_description() {
        // The paper quotes 5x5 for mesh x1 and 11x11 for mesh x4 (middle
        // routers); averages over the column are slightly lower because edge
        // routers lack one neighbour.
        let x1 = geo(ColumnTopology::MeshX1);
        assert!(x1.xbar_inputs > 4.0 && x1.xbar_inputs <= 5.0);
        assert!(x1.xbar_outputs > 4.0 && x1.xbar_outputs <= 5.0);

        let x4 = geo(ColumnTopology::MeshX4);
        assert!(x4.xbar_inputs > 9.5 && x4.xbar_inputs <= 11.0);
        assert!(x4.xbar_outputs > 9.5 && x4.xbar_outputs <= 11.0);

        let mecs = geo(ColumnTopology::Mecs);
        assert!(mecs.xbar_inputs <= 5.0);
        assert!(mecs.xbar_outputs <= 5.0);

        let dps = geo(ColumnTopology::Dps);
        assert!(dps.xbar_inputs <= 5.0);
        assert!(dps.xbar_outputs > 9.0 && dps.xbar_outputs <= 10.0);
    }

    #[test]
    fn mecs_has_the_largest_column_buffers() {
        let x1 = geo(ColumnTopology::MeshX1).column_buffer_flits;
        let x4 = geo(ColumnTopology::MeshX4).column_buffer_flits;
        let mecs = geo(ColumnTopology::Mecs).column_buffer_flits;
        let dps = geo(ColumnTopology::Dps).column_buffer_flits;
        assert!(mecs > x4);
        assert!(mecs > dps);
        assert!(dps > x1);
        assert!(x4 > x1);
    }

    #[test]
    fn row_buffers_are_identical_across_topologies() {
        let row: Vec<f64> = ColumnTopology::all()
            .iter()
            .map(|&t| geo(t).row_buffer_flits)
            .collect();
        for r in &row {
            assert_eq!(*r, row[0]);
        }
        // 7 row inputs x 14 VCs x 4 flits + 1 terminal VC x 4 flits.
        assert_eq!(row[0], 7.0 * 56.0 + 4.0);
    }

    #[test]
    fn mecs_shares_the_most_input_ports_per_crossbar_port() {
        let mecs = geo(ColumnTopology::Mecs);
        let x1 = geo(ColumnTopology::MeshX1);
        assert!(mecs.max_ports_per_xbar_input > x1.max_ports_per_xbar_input);
        assert_eq!(mecs.max_ports_per_xbar_input, 7.0);
    }

    #[test]
    fn dps_flow_tables_scale_with_outputs() {
        let dps = geo(ColumnTopology::Dps);
        let mesh = geo(ColumnTopology::MeshX1);
        assert!(dps.flow_table_entries > mesh.flow_table_entries);
        assert_eq!(mesh.flow_table_entries, 64.0);
    }

    #[test]
    fn buffer_totals_include_both_components() {
        let g = geo(ColumnTopology::MeshX1);
        assert_eq!(
            g.total_buffer_flits(),
            g.column_buffer_flits + g.row_buffer_flits
        );
        assert_eq!(g.total_buffer_bits(), g.total_buffer_flits() * 128.0);
    }
}
