//! Shared-region (column) topologies.
//!
//! The paper evaluates the QOS-enabled shared region — one column of eight
//! routers in the 8x8 grid of a 256-tile CMP — under five topologies:
//!
//! * **mesh x1 / x2 / x4** — a one-dimensional mesh along the column with 1,
//!   2 or 4 replicated channels per direction and a single monolithic
//!   crossbar per router;
//! * **MECS** — Multidrop Express Channels: each router drives one
//!   point-to-multipoint channel per direction that drops off at every
//!   downstream node; all inputs arriving from one direction share a
//!   crossbar port;
//! * **DPS** — Destination Partitioned Subnets (the paper's new topology):
//!   one light-weight subnetwork per destination node; intermediate hops are
//!   2:1 muxes with single-cycle traversal and no flow-state queries.
//!
//! Every router additionally has eight injectors (the node's terminal plus
//! seven row inputs carrying traffic from the rest of the chip into the
//! column) and one ejection port towards the node's shared-resource terminal.
//!
//! [`ColumnTopology::build`] emits a [`NetworkSpec`] executed by the generic
//! router engine in `taqos-netsim`; Table 1 of the paper is reproduced by the
//! per-topology defaults in [`TopologyParams`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use taqos_netsim::spec::{
    InputPortSpec, NetworkSpec, OutputPortSpec, RouterSpec, SinkSpec, SourceSpec, TargetEndpoint,
    TargetSpec, VcConfig,
};
use taqos_netsim::{Direction, FlowId, InPortId, NodeId, OutPortId};

/// The five shared-region topologies evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnTopology {
    /// Baseline one-dimensional mesh (one channel per direction).
    MeshX1,
    /// Mesh with two replicated channels per direction.
    MeshX2,
    /// Mesh with four replicated channels per direction (equal bisection
    /// bandwidth to MECS and DPS).
    MeshX4,
    /// Multidrop Express Channels.
    Mecs,
    /// Destination Partitioned Subnets.
    Dps,
}

impl ColumnTopology {
    /// All five topologies, in the order the paper's figures present them.
    pub fn all() -> [ColumnTopology; 5] {
        [
            ColumnTopology::MeshX1,
            ColumnTopology::MeshX2,
            ColumnTopology::MeshX4,
            ColumnTopology::Mecs,
            ColumnTopology::Dps,
        ]
    }

    /// Short lower-case name used in reports (`"mesh_x1"`, `"mecs"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ColumnTopology::MeshX1 => "mesh_x1",
            ColumnTopology::MeshX2 => "mesh_x2",
            ColumnTopology::MeshX4 => "mesh_x4",
            ColumnTopology::Mecs => "mecs",
            ColumnTopology::Dps => "dps",
        }
    }

    /// Mesh replication factor (1, 2 or 4); `None` for MECS and DPS.
    pub fn mesh_replication(self) -> Option<u8> {
        match self {
            ColumnTopology::MeshX1 => Some(1),
            ColumnTopology::MeshX2 => Some(2),
            ColumnTopology::MeshX4 => Some(4),
            ColumnTopology::Mecs | ColumnTopology::Dps => None,
        }
    }

    /// Per-topology router parameters reproducing Table 1 of the paper.
    pub fn params(self) -> TopologyParams {
        match self {
            ColumnTopology::MeshX1 | ColumnTopology::MeshX2 | ColumnTopology::MeshX4 => {
                TopologyParams {
                    network_vcs: 6,
                    vc_depth_flits: 4,
                    reserved_vcs: 1,
                    va_latency: 1,
                    xt_latency: 1,
                }
            }
            ColumnTopology::Mecs => TopologyParams {
                network_vcs: 14,
                vc_depth_flits: 4,
                reserved_vcs: 1,
                va_latency: 2,
                xt_latency: 1,
            },
            ColumnTopology::Dps => TopologyParams {
                network_vcs: 5,
                vc_depth_flits: 4,
                reserved_vcs: 1,
                va_latency: 1,
                xt_latency: 1,
            },
        }
    }

    /// Builds the [`NetworkSpec`] of a shared-region column with this
    /// topology.
    pub fn build(self, config: &ColumnConfig) -> NetworkSpec {
        build_column(self, config, &self.params())
    }

    /// Builds the [`NetworkSpec`] with explicit router parameters (used for
    /// ablation studies such as VC-count sweeps).
    pub fn build_with_params(self, config: &ColumnConfig, params: &TopologyParams) -> NetworkSpec {
        build_column(self, config, params)
    }
}

impl std::fmt::Display for ColumnTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Router pipeline and buffering parameters of a column topology (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyParams {
    /// Virtual channels per column network input port.
    pub network_vcs: u8,
    /// Flits per virtual channel (the largest packet).
    pub vc_depth_flits: u8,
    /// Virtual channels per network port reserved for rate-compliant traffic.
    pub reserved_vcs: u8,
    /// Virtual-channel allocation latency in cycles.
    pub va_latency: u32,
    /// Crossbar traversal latency in cycles.
    pub xt_latency: u32,
}

/// Structural parameters of the shared-region column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnConfig {
    /// Number of nodes (routers) in the column; 8 in the paper.
    pub nodes: usize,
    /// Row inputs arriving from the east at each node.
    pub row_inputs_east: usize,
    /// Row inputs arriving from the west at each node.
    pub row_inputs_west: usize,
    /// Virtual channels at each injection port.
    pub injection_vcs: u8,
    /// Ejection slots (ejection VCs) at each terminal.
    pub ejection_slots: u8,
    /// Outstanding-packet window per source (retransmission support).
    pub source_window: usize,
    /// Channel width in bytes (16-byte links in the paper).
    pub flit_bytes: u32,
}

impl Default for ColumnConfig {
    fn default() -> Self {
        ColumnConfig {
            nodes: 8,
            row_inputs_east: 4,
            row_inputs_west: 3,
            injection_vcs: 1,
            ejection_slots: 2,
            source_window: 16,
            flit_bytes: 16,
        }
    }
}

impl ColumnConfig {
    /// The paper's configuration: an 8-node column with 8 injectors per node.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A smaller column used in quick tests.
    pub fn small(nodes: usize) -> Self {
        ColumnConfig {
            nodes,
            ..Self::default()
        }
    }

    /// Injectors per node (terminal plus row inputs).
    pub fn injectors_per_node(&self) -> usize {
        1 + self.row_inputs_east + self.row_inputs_west
    }

    /// Total number of flows (injectors) in the column.
    pub fn num_flows(&self) -> usize {
        self.nodes * self.injectors_per_node()
    }

    /// Flow identifier of injector `injector` at node `node`.
    ///
    /// Injector 0 is the node's terminal; 1.. are row inputs.
    pub fn flow_of(&self, node: usize, injector: usize) -> FlowId {
        assert!(node < self.nodes, "node {node} out of range");
        assert!(
            injector < self.injectors_per_node(),
            "injector {injector} out of range"
        );
        FlowId((node * self.injectors_per_node() + injector) as u16)
    }

    /// Node and injector index of a flow (inverse of [`Self::flow_of`]).
    pub fn node_of_flow(&self, flow: FlowId) -> (usize, usize) {
        let per = self.injectors_per_node();
        (flow.index() / per, flow.index() % per)
    }

    /// Flow identifiers of all terminal injectors (injector 0 of each node).
    pub fn terminal_flows(&self) -> Vec<FlowId> {
        (0..self.nodes).map(|n| self.flow_of(n, 0)).collect()
    }
}

/// Crossbar input group of the terminal injection port.
const GROUP_TERMINAL: u8 = 0;
/// Crossbar input group shared by the east row inputs.
const GROUP_ROW_EAST: u8 = 1;
/// Crossbar input group shared by the west row inputs.
const GROUP_ROW_WEST: u8 = 2;
/// First crossbar input group available for column network ports.
const GROUP_NETWORK_BASE: u8 = 3;

/// Builds the injection ports common to every topology and returns them with
/// a name-to-index map.
fn injection_ports(config: &ColumnConfig) -> Vec<InputPortSpec> {
    let vcs = VcConfig::new(config.injection_vcs, 4);
    let mut ports = Vec::with_capacity(config.injectors_per_node());
    ports.push(InputPortSpec::injection("term", vcs, GROUP_TERMINAL));
    for e in 0..config.row_inputs_east {
        ports.push(InputPortSpec::injection(
            format!("row_e{e}"),
            vcs,
            GROUP_ROW_EAST,
        ));
    }
    for w in 0..config.row_inputs_west {
        ports.push(InputPortSpec::injection(
            format!("row_w{w}"),
            vcs,
            GROUP_ROW_WEST,
        ));
    }
    ports
}

/// Builds sources (one per injector) and sinks (one terminal per node).
fn sources_and_sinks(config: &ColumnConfig) -> (Vec<SourceSpec>, Vec<SinkSpec>) {
    let mut sources = Vec::with_capacity(config.num_flows());
    let mut sinks = Vec::with_capacity(config.nodes);
    for node in 0..config.nodes {
        for injector in 0..config.injectors_per_node() {
            let name = if injector == 0 {
                format!("n{node}.term")
            } else if injector <= config.row_inputs_east {
                format!("n{node}.row_e{}", injector - 1)
            } else {
                format!("n{node}.row_w{}", injector - 1 - config.row_inputs_east)
            };
            sources.push(SourceSpec {
                flow: config.flow_of(node, injector),
                node: NodeId(node as u16),
                router: node,
                in_port: InPortId(injector),
                name,
                window: config.source_window,
            });
        }
        sinks.push(SinkSpec {
            node: NodeId(node as u16),
            name: format!("n{node}.terminal"),
            slots: config.ejection_slots,
        });
    }
    (sources, sinks)
}

/// Key identifying a column network input port of a router during spec
/// construction, so upstream routers can reference downstream port indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PortKey {
    /// Mesh input from `from` on replicated channel `channel`.
    Mesh { from: usize, channel: u8 },
    /// MECS input fed by the channel driven by `from`.
    Mecs { from: usize },
    /// DPS input of subnet `subnet` fed by `from`.
    Dps { subnet: usize, from: usize },
}

struct ColumnBuilder {
    topology: ColumnTopology,
    config: ColumnConfig,
    params: TopologyParams,
    /// Per-router input ports (injection ports first).
    inputs: Vec<Vec<InputPortSpec>>,
    /// Per-router map of network-port keys to input indices.
    input_index: Vec<BTreeMap<PortKey, usize>>,
}

impl ColumnBuilder {
    fn new(topology: ColumnTopology, config: &ColumnConfig, params: &TopologyParams) -> Self {
        ColumnBuilder {
            topology,
            config: *config,
            params: *params,
            inputs: Vec::new(),
            input_index: Vec::new(),
        }
    }

    fn network_vcs(&self) -> VcConfig {
        VcConfig::with_reserved(
            self.params.network_vcs,
            self.params.vc_depth_flits,
            self.params.reserved_vcs,
        )
    }

    /// Pass 1: create every router's input ports and remember their indices.
    fn build_inputs(&mut self) {
        let n = self.config.nodes;
        for node in 0..n {
            let mut ports = injection_ports(&self.config);
            let mut index = BTreeMap::new();
            let mut next_group = GROUP_NETWORK_BASE;
            let vcs = self.network_vcs();
            match self.topology {
                ColumnTopology::MeshX1 | ColumnTopology::MeshX2 | ColumnTopology::MeshX4 => {
                    let k = self.topology.mesh_replication().expect("mesh");
                    for channel in 0..k {
                        if node > 0 {
                            index.insert(
                                PortKey::Mesh {
                                    from: node - 1,
                                    channel,
                                },
                                ports.len(),
                            );
                            ports.push(InputPortSpec::network(
                                format!("col_s_ch{channel}_from_n{}", node - 1),
                                NodeId((node - 1) as u16),
                                Direction::South,
                                channel,
                                vcs,
                                next_group,
                            ));
                            next_group += 1;
                        }
                        if node + 1 < n {
                            index.insert(
                                PortKey::Mesh {
                                    from: node + 1,
                                    channel,
                                },
                                ports.len(),
                            );
                            ports.push(InputPortSpec::network(
                                format!("col_n_ch{channel}_from_n{}", node + 1),
                                NodeId((node + 1) as u16),
                                Direction::North,
                                channel,
                                vcs,
                                next_group,
                            ));
                            next_group += 1;
                        }
                    }
                }
                ColumnTopology::Mecs => {
                    // All inputs from one direction share a crossbar port.
                    let north_group = next_group;
                    let south_group = next_group + 1;
                    for from in 0..node {
                        index.insert(PortKey::Mecs { from }, ports.len());
                        ports.push(InputPortSpec::network(
                            format!("mecs_s_from_n{from}"),
                            NodeId(from as u16),
                            Direction::South,
                            0,
                            vcs,
                            north_group,
                        ));
                    }
                    for from in (node + 1)..n {
                        index.insert(PortKey::Mecs { from }, ports.len());
                        ports.push(InputPortSpec::network(
                            format!("mecs_n_from_n{from}"),
                            NodeId(from as u16),
                            Direction::North,
                            0,
                            vcs,
                            south_group,
                        ));
                    }
                }
                ColumnTopology::Dps => {
                    // One subnet per destination. At node `i`, subnet `d` has
                    // an input from the north neighbour when d >= i (traffic
                    // travelling south towards d) and from the south
                    // neighbour when d <= i.
                    for subnet in 0..n {
                        if node > 0 && subnet >= node {
                            index.insert(
                                PortKey::Dps {
                                    subnet,
                                    from: node - 1,
                                },
                                ports.len(),
                            );
                            ports.push(InputPortSpec::network(
                                format!("dps{subnet}_from_n{}", node - 1),
                                NodeId((node - 1) as u16),
                                Direction::South,
                                subnet as u8,
                                vcs,
                                next_group,
                            ));
                            next_group += 1;
                        }
                        if node + 1 < n && subnet <= node {
                            index.insert(
                                PortKey::Dps {
                                    subnet,
                                    from: node + 1,
                                },
                                ports.len(),
                            );
                            ports.push(InputPortSpec::network(
                                format!("dps{subnet}_from_n{}", node + 1),
                                NodeId((node + 1) as u16),
                                Direction::North,
                                subnet as u8,
                                vcs,
                                next_group,
                            ));
                            next_group += 1;
                        }
                    }
                }
            }
            self.inputs.push(ports);
            self.input_index.push(index);
        }
    }

    /// Pass 2: create outputs, routing tables, and (for DPS) pass-through
    /// fixed routes, producing the final router specs.
    fn build_routers(&mut self) -> Vec<RouterSpec> {
        let n = self.config.nodes;
        let mut routers = Vec::with_capacity(n);
        for node in 0..n {
            let mut outputs: Vec<OutputPortSpec> = Vec::new();
            let mut route_table: BTreeMap<NodeId, Vec<OutPortId>> = BTreeMap::new();
            // Output 0: ejection towards this node's terminal.
            outputs.push(OutputPortSpec::ejection("eject", node, 0));
            route_table.insert(NodeId(node as u16), vec![OutPortId(0)]);

            match self.topology {
                ColumnTopology::MeshX1 | ColumnTopology::MeshX2 | ColumnTopology::MeshX4 => {
                    let k = self.topology.mesh_replication().expect("mesh");
                    let mut north_ports = Vec::new();
                    let mut south_ports = Vec::new();
                    for channel in 0..k {
                        if node > 0 {
                            let in_port = self.input_index[node - 1][&PortKey::Mesh {
                                from: node,
                                channel,
                            }];
                            north_ports.push(OutPortId(outputs.len()));
                            outputs.push(OutputPortSpec::network(
                                format!("north_ch{channel}"),
                                Direction::North,
                                channel,
                                vec![TargetSpec::single(
                                    TargetEndpoint::Router {
                                        router: node - 1,
                                        in_port: InPortId(in_port),
                                    },
                                    1,
                                )],
                            ));
                        }
                        if node + 1 < n {
                            let in_port = self.input_index[node + 1][&PortKey::Mesh {
                                from: node,
                                channel,
                            }];
                            south_ports.push(OutPortId(outputs.len()));
                            outputs.push(OutputPortSpec::network(
                                format!("south_ch{channel}"),
                                Direction::South,
                                channel,
                                vec![TargetSpec::single(
                                    TargetEndpoint::Router {
                                        router: node + 1,
                                        in_port: InPortId(in_port),
                                    },
                                    1,
                                )],
                            ));
                        }
                    }
                    for dest in 0..n {
                        if dest < node {
                            route_table.insert(NodeId(dest as u16), north_ports.clone());
                        } else if dest > node {
                            route_table.insert(NodeId(dest as u16), south_ports.clone());
                        }
                    }
                }
                ColumnTopology::Mecs => {
                    if node > 0 {
                        let targets = (0..node)
                            .map(|dest| {
                                let in_port = self.input_index[dest][&PortKey::Mecs { from: node }];
                                TargetSpec::covering(
                                    TargetEndpoint::Router {
                                        router: dest,
                                        in_port: InPortId(in_port),
                                    },
                                    (node - dest) as u32,
                                    vec![NodeId(dest as u16)],
                                )
                            })
                            .collect();
                        let port = OutPortId(outputs.len());
                        outputs.push(OutputPortSpec::network(
                            "mecs_north",
                            Direction::North,
                            0,
                            targets,
                        ));
                        for dest in 0..node {
                            route_table.insert(NodeId(dest as u16), vec![port]);
                        }
                    }
                    if node + 1 < n {
                        let targets = ((node + 1)..n)
                            .map(|dest| {
                                let in_port = self.input_index[dest][&PortKey::Mecs { from: node }];
                                TargetSpec::covering(
                                    TargetEndpoint::Router {
                                        router: dest,
                                        in_port: InPortId(in_port),
                                    },
                                    (dest - node) as u32,
                                    vec![NodeId(dest as u16)],
                                )
                            })
                            .collect();
                        let port = OutPortId(outputs.len());
                        outputs.push(OutputPortSpec::network(
                            "mecs_south",
                            Direction::South,
                            0,
                            targets,
                        ));
                        for dest in (node + 1)..n {
                            route_table.insert(NodeId(dest as u16), vec![port]);
                        }
                    }
                }
                ColumnTopology::Dps => {
                    // One output per destination subnet, towards the next hop
                    // of that subnet.
                    let mut subnet_out: BTreeMap<usize, OutPortId> = BTreeMap::new();
                    for subnet in 0..n {
                        if subnet == node {
                            continue;
                        }
                        let (next, dir) = if subnet > node {
                            (node + 1, Direction::South)
                        } else {
                            (node - 1, Direction::North)
                        };
                        let in_port = self.input_index[next][&PortKey::Dps { subnet, from: node }];
                        let port = OutPortId(outputs.len());
                        subnet_out.insert(subnet, port);
                        outputs.push(OutputPortSpec::network(
                            format!("dps{subnet}_out"),
                            dir,
                            subnet as u8,
                            vec![TargetSpec::single(
                                TargetEndpoint::Router {
                                    router: next,
                                    in_port: InPortId(in_port),
                                },
                                1,
                            )],
                        ));
                        route_table.insert(NodeId(subnet as u16), vec![port]);
                    }
                    // Through traffic uses fixed routes: continue on the
                    // subnet (pass-through) or eject at the subnet's
                    // destination.
                    for port in &mut self.inputs[node] {
                        let Some(channel) = subnet_channel(port) else {
                            continue;
                        };
                        let subnet = channel as usize;
                        if subnet == node {
                            *port = port.clone().with_fixed_route(OutPortId(0));
                        } else {
                            *port = port.clone().with_passthrough(subnet_out[&subnet]);
                        }
                    }
                }
            }

            routers.push(RouterSpec {
                node: NodeId(node as u16),
                inputs: self.inputs[node].clone(),
                outputs,
                route_table,
                va_latency: self.params.va_latency,
                xt_latency: self.params.xt_latency,
            });
        }
        routers
    }
}

/// Extracts the subnet (channel) of a DPS network input port.
fn subnet_channel(port: &InputPortSpec) -> Option<u8> {
    match port.kind {
        taqos_netsim::spec::InputKind::Network { channel, .. } => Some(channel),
        taqos_netsim::spec::InputKind::Injection => None,
    }
}

fn build_column(
    topology: ColumnTopology,
    config: &ColumnConfig,
    params: &TopologyParams,
) -> NetworkSpec {
    assert!(config.nodes >= 2, "a column needs at least two nodes");
    let mut builder = ColumnBuilder::new(topology, config, params);
    builder.build_inputs();
    let routers = builder.build_routers();
    let (sources, sinks) = sources_and_sinks(config);
    let spec = NetworkSpec {
        name: topology.name().to_string(),
        routers,
        sources,
        sinks,
        flit_bytes: config.flit_bytes,
    };
    spec.validate()
        .expect("generated column specification must be valid");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use taqos_netsim::spec::InputKind;

    #[test]
    fn all_topologies_build_valid_specs() {
        let config = ColumnConfig::paper();
        for topology in ColumnTopology::all() {
            let spec = topology.build(&config);
            assert_eq!(spec.routers.len(), 8);
            assert_eq!(spec.sources.len(), 64);
            assert_eq!(spec.sinks.len(), 8);
            assert_eq!(spec.name, topology.name());
            spec.validate().expect("valid");
        }
    }

    #[test]
    fn config_flow_mapping_roundtrips() {
        let config = ColumnConfig::paper();
        assert_eq!(config.injectors_per_node(), 8);
        assert_eq!(config.num_flows(), 64);
        let flow = config.flow_of(3, 5);
        assert_eq!(config.node_of_flow(flow), (3, 5));
        assert_eq!(config.terminal_flows().len(), 8);
        assert_eq!(config.terminal_flows()[2], FlowId(16));
    }

    #[test]
    fn mesh_replication_multiplies_column_ports() {
        let config = ColumnConfig::paper();
        let count_network = |spec: &NetworkSpec, router: usize| {
            spec.routers[router]
                .inputs
                .iter()
                .filter(|p| matches!(p.kind, InputKind::Network { .. }))
                .count()
        };
        let x1 = ColumnTopology::MeshX1.build(&config);
        let x4 = ColumnTopology::MeshX4.build(&config);
        // Middle routers have both neighbours.
        assert_eq!(count_network(&x1, 3), 2);
        assert_eq!(count_network(&x4, 3), 8);
        // Edge routers have one neighbour.
        assert_eq!(count_network(&x1, 0), 1);
        assert_eq!(count_network(&x4, 0), 4);
    }

    #[test]
    fn mecs_routers_have_one_input_per_remote_node() {
        let spec = ColumnTopology::Mecs.build(&ColumnConfig::paper());
        for (node, router) in spec.routers.iter().enumerate() {
            let network_ports = router
                .inputs
                .iter()
                .filter(|p| matches!(p.kind, InputKind::Network { .. }))
                .count();
            assert_eq!(network_ports, 7, "router {node}");
            // All inputs from one direction share a crossbar port: at most
            // two network crossbar groups plus three injection groups.
            assert!(router.xbar_input_groups() <= 5);
        }
    }

    #[test]
    fn mecs_channels_reach_every_downstream_node_in_one_hop() {
        let spec = ColumnTopology::Mecs.build(&ColumnConfig::paper());
        let south = spec.routers[0]
            .outputs
            .iter()
            .find(|o| o.name == "mecs_south")
            .expect("router 0 has a south channel");
        assert_eq!(south.targets.len(), 7);
        // Wire delay grows with distance.
        for target in &south.targets {
            let TargetEndpoint::Router { router, .. } = target.endpoint else {
                panic!("MECS targets are routers");
            };
            assert_eq!(target.wire_delay as usize, router);
        }
    }

    #[test]
    fn mesh_pipeline_is_shallower_than_mecs() {
        let config = ColumnConfig::paper();
        let mesh = ColumnTopology::MeshX1.build(&config);
        let mecs = ColumnTopology::Mecs.build(&config);
        assert_eq!(mesh.routers[0].pipeline_latency(), 2);
        assert_eq!(mecs.routers[0].pipeline_latency(), 3);
    }

    #[test]
    fn dps_intermediate_ports_are_passthrough() {
        let spec = ColumnTopology::Dps.build(&ColumnConfig::paper());
        // At router 3, subnet 7 traffic from node 2 passes through.
        let router = &spec.routers[3];
        let through = router
            .inputs
            .iter()
            .find(|p| p.name == "dps7_from_n2")
            .expect("pass-through port exists");
        assert!(through.passthrough);
        assert!(through.fixed_route.is_some());
        // Subnet 3 terminates here: its inputs eject without pass-through.
        let terminating = router
            .inputs
            .iter()
            .find(|p| p.name == "dps3_from_n2")
            .expect("terminating port exists");
        assert!(!terminating.passthrough);
        assert_eq!(terminating.fixed_route, Some(OutPortId(0)));
    }

    #[test]
    fn dps_has_one_output_per_remote_destination() {
        let spec = ColumnTopology::Dps.build(&ColumnConfig::paper());
        for router in &spec.routers {
            let subnet_outputs = router
                .outputs
                .iter()
                .filter(|o| o.name.starts_with("dps"))
                .count();
            assert_eq!(subnet_outputs, 7);
        }
    }

    #[test]
    fn buffer_capacity_ordering_matches_paper() {
        // MECS provisions by far the deepest column buffers; DPS sits between
        // the baseline mesh and MECS; replication grows mesh buffers.
        let config = ColumnConfig::paper();
        let network_flits = |t: ColumnTopology| {
            let spec = t.build(&config);
            spec.routers
                .iter()
                .flat_map(|r| r.inputs.iter())
                .filter(|p| matches!(p.kind, InputKind::Network { .. }))
                .map(|p| u64::from(p.vcs.capacity_flits()))
                .sum::<u64>()
        };
        let x1 = network_flits(ColumnTopology::MeshX1);
        let x4 = network_flits(ColumnTopology::MeshX4);
        let mecs = network_flits(ColumnTopology::Mecs);
        let dps = network_flits(ColumnTopology::Dps);
        assert!(x1 < x4);
        assert!(x4 < mecs);
        assert!(dps < mecs);
        assert!(dps > x1);
    }

    #[test]
    fn small_columns_also_build() {
        let config = ColumnConfig::small(2);
        for topology in ColumnTopology::all() {
            let spec = topology.build(&config);
            assert_eq!(spec.routers.len(), 2);
            spec.validate().expect("valid");
        }
    }

    #[test]
    fn params_match_table_1() {
        assert_eq!(ColumnTopology::MeshX1.params().network_vcs, 6);
        assert_eq!(ColumnTopology::Mecs.params().network_vcs, 14);
        assert_eq!(ColumnTopology::Dps.params().network_vcs, 5);
        assert_eq!(ColumnTopology::Mecs.params().va_latency, 2);
        assert_eq!(ColumnTopology::Dps.params().va_latency, 1);
        for t in ColumnTopology::all() {
            assert_eq!(t.params().vc_depth_flits, 4);
            assert_eq!(t.params().reserved_vcs, 1);
        }
    }
}
