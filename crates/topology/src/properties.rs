//! Analytic properties of the column topologies: bisection bandwidth,
//! zero-load latency, and average hop counts.
//!
//! These closed-form quantities complement the cycle-level simulation: they
//! explain the ordering of the latency/throughput curves (Figure 4) and are
//! verified against the simulator in integration tests.

use crate::column::{ColumnConfig, ColumnTopology};

/// Number of channels crossing the middle bisection of an `n`-node column
/// (both directions combined).
///
/// Mesh xK contributes `2·K` channels; MECS and DPS each contribute `n`
/// channels, which is why MECS, DPS and mesh x4 have equal bisection
/// bandwidth for the paper's 8-node column.
pub fn bisection_channels(topology: ColumnTopology, nodes: usize) -> usize {
    match topology {
        ColumnTopology::MeshX1 => 2,
        ColumnTopology::MeshX2 => 4,
        ColumnTopology::MeshX4 => 8,
        ColumnTopology::Mecs | ColumnTopology::Dps => nodes,
    }
}

/// Bisection bandwidth in bytes per cycle.
pub fn bisection_bandwidth_bytes(topology: ColumnTopology, config: &ColumnConfig) -> u64 {
    bisection_channels(topology, config.nodes) as u64 * u64::from(config.flit_bytes)
}

/// Zero-load head latency (cycles) of a packet travelling `hops` nodes along
/// the column, from injection-port arbitration at the source router to
/// hand-off at the destination terminal, excluding serialisation.
///
/// * mesh: every hop traverses a 2-cycle router (VA, XT) plus a 1-cycle wire;
///   the destination router adds a final 2-cycle traversal for ejection.
/// * MECS: one 3-cycle router (2-cycle arbitration) at the source, `hops`
///   cycles of wire, and a 3-cycle traversal at the destination.
/// * DPS: 2-cycle routers at source and destination, single-cycle traversals
///   at the `hops - 1` intermediate nodes, and a 1-cycle wire per hop.
pub fn zero_load_latency(topology: ColumnTopology, hops: u32) -> u32 {
    let params = topology.params();
    let router = params.va_latency + params.xt_latency;
    if hops == 0 {
        // Local traffic: injection port to ejection port of the same router.
        return router;
    }
    match topology {
        ColumnTopology::MeshX1 | ColumnTopology::MeshX2 | ColumnTopology::MeshX4 => {
            (hops + 1) * router + hops
        }
        ColumnTopology::Mecs => 2 * router + hops,
        ColumnTopology::Dps => 2 * router + (hops - 1) + hops,
    }
}

/// Average hop distance of uniform-random traffic over `n` destinations laid
/// out on a line (self-traffic excluded).
pub fn uniform_random_avg_hops(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                total += (i as i64 - j as i64).unsigned_abs();
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

/// Average hop distance of the tornado pattern (destination half-way across
/// the dimension: `dst = (src + n/2) mod n`) on a line of `n` nodes.
pub fn tornado_avg_hops(n: usize) -> f64 {
    if n < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    for src in 0..n {
        let dst = (src + n / 2) % n;
        total += (src as i64 - dst as i64).unsigned_abs();
    }
    total as f64 / n as f64
}

/// Zero-load latency at the average uniform-random distance; used to sanity
/// check the simulated latency ordering of Figure 4(a).
pub fn zero_load_latency_uniform(topology: ColumnTopology, nodes: usize) -> f64 {
    let hops = uniform_random_avg_hops(nodes);
    interpolate_latency(topology, hops)
}

/// Zero-load latency at the tornado distance; used to sanity check the
/// ordering of Figure 4(b).
pub fn zero_load_latency_tornado(topology: ColumnTopology, nodes: usize) -> f64 {
    let hops = tornado_avg_hops(nodes);
    interpolate_latency(topology, hops)
}

fn interpolate_latency(topology: ColumnTopology, hops: f64) -> f64 {
    let lo = hops.floor() as u32;
    let hi = hops.ceil() as u32;
    let frac = hops - f64::from(lo);
    let a = f64::from(zero_load_latency(topology, lo));
    let b = f64::from(zero_load_latency(topology, hi));
    a + (b - a) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 8;

    #[test]
    fn equal_bisection_for_mecs_dps_and_mesh_x4() {
        let cfg = ColumnConfig::paper();
        let x4 = bisection_bandwidth_bytes(ColumnTopology::MeshX4, &cfg);
        let mecs = bisection_bandwidth_bytes(ColumnTopology::Mecs, &cfg);
        let dps = bisection_bandwidth_bytes(ColumnTopology::Dps, &cfg);
        assert_eq!(x4, mecs);
        assert_eq!(mecs, dps);
        assert_eq!(
            bisection_bandwidth_bytes(ColumnTopology::MeshX1, &cfg) * 4,
            x4
        );
        assert_eq!(
            bisection_bandwidth_bytes(ColumnTopology::MeshX2, &cfg) * 2,
            x4
        );
    }

    #[test]
    fn average_distances_match_hand_computation() {
        // For 8 nodes on a line the mean pairwise distance is 3.
        assert!((uniform_random_avg_hops(N) - 3.0).abs() < 1e-12);
        // Tornado always travels 4 hops on an 8-node line.
        assert!((tornado_avg_hops(N) - 4.0).abs() < 1e-12);
        assert_eq!(uniform_random_avg_hops(1), 0.0);
        assert_eq!(tornado_avg_hops(0), 0.0);
    }

    #[test]
    fn zero_load_latency_formulas() {
        // 3 hops: mesh = 4 routers * 2 + 3 wires = 11; MECS = 3 + 3 + 3 = 9;
        // DPS = 2 + 2 intermediate + 3 wires + 2 = 9.
        assert_eq!(zero_load_latency(ColumnTopology::MeshX1, 3), 11);
        assert_eq!(zero_load_latency(ColumnTopology::Mecs, 3), 9);
        assert_eq!(zero_load_latency(ColumnTopology::Dps, 3), 9);
        // Local traffic needs only the source router.
        assert_eq!(zero_load_latency(ColumnTopology::MeshX1, 0), 2);
        assert_eq!(zero_load_latency(ColumnTopology::Mecs, 0), 3);
    }

    #[test]
    fn mecs_and_dps_beat_meshes_at_average_distance() {
        for t in [ColumnTopology::Mecs, ColumnTopology::Dps] {
            for mesh in [
                ColumnTopology::MeshX1,
                ColumnTopology::MeshX2,
                ColumnTopology::MeshX4,
            ] {
                assert!(zero_load_latency_uniform(t, N) < zero_load_latency_uniform(mesh, N));
            }
        }
    }

    #[test]
    fn longer_distances_favour_mecs_over_dps() {
        // At the tornado distance MECS amortises its deeper pipeline.
        assert!(
            zero_load_latency_tornado(ColumnTopology::Mecs, N)
                < zero_load_latency_tornado(ColumnTopology::Dps, N)
        );
        // At one hop DPS is faster than MECS.
        assert!(
            zero_load_latency(ColumnTopology::Dps, 1) < zero_load_latency(ColumnTopology::Mecs, 1)
        );
    }
}
