//! Hybrid chip-scale topology: a 2-D XY mesh with per-row MECS express
//! channels into the shared-resource columns.
//!
//! The paper's chip (§2) confines QOS hardware to dedicated shared columns
//! and relies on richly connected MECS rows so that *every node reaches a
//! shared column in a single network hop*. This module composes that hybrid
//! fabric as one [`NetworkSpec`] executed by the generic router engine:
//!
//! * the **mesh substrate** — the XY dimension-order mesh of
//!   [`crate::mesh2d`], carrying intra-domain and miscellaneous traffic
//!   between QOS-free routers;
//! * **per-row MECS express channels** — every node outside a shared column
//!   drives one point-to-multipoint channel per row direction that drops off
//!   at each shared column it crosses (the multidrop port machinery of
//!   [`crate::column`]'s MECS builder: all express inputs arriving at a
//!   column router from one direction share a single crossbar port);
//! * the **shared-column overlay** — routers inside shared columns carry the
//!   QOS provisioning (reserved virtual channels, the deeper MECS-style
//!   arbitration pipeline) while every other router stays QOS-free,
//!   reproducing the paper's cost argument.
//!
//! Routing is destination-based and topology-aware: at a non-column router,
//! any destination inside a shared column is reached through the row express
//! channel (one MECS hop to the column, then the QOS-protected column links),
//! which is exactly the route `taqos-core`'s
//! `TopologyAwareChip::memory_access_route` prescribes for memory accesses.
//! All other destinations use plain XY mesh routing.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use taqos_netsim::spec::{
    InputPortSpec, NetworkSpec, OutputPortSpec, RouterSpec, SinkSpec, SourceSpec, TargetEndpoint,
    TargetSpec, VcConfig,
};
use taqos_netsim::{Direction, FlowId, InPortId, NodeId, OutPortId};

/// Replicated-channel index used by express channels, distinguishing them
/// from the mesh links (channel 0) that may share a direction.
const EXPRESS_CHANNEL: u8 = 1;

/// Configuration of the hybrid chip fabric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Nodes per row.
    pub width: usize,
    /// Nodes per column.
    pub height: usize,
    /// X indices of the shared-resource (QOS-protected) columns.
    pub shared_columns: BTreeSet<u16>,
    /// Virtual channels at each injection port.
    pub injection_vcs: u8,
    /// Virtual channels at each mesh network input port.
    pub network_vcs: u8,
    /// Virtual channels at each express (multidrop) input port of a column
    /// router; MECS inputs are generously buffered (Table 1).
    pub express_vcs: u8,
    /// VC depth in flits (virtual cut-through: at least the longest packet).
    pub vc_depth: u8,
    /// VCs per network/express input port of a *shared-column* router that
    /// are reserved for rate-compliant traffic. Non-column routers never
    /// reserve VCs — reservations are part of the QOS overlay.
    pub column_reserved_vcs: u8,
    /// Ejection slots at each terminal.
    pub ejection_slots: u8,
    /// Outstanding-packet window per source.
    pub source_window: usize,
    /// Channel width in bytes.
    pub flit_bytes: u32,
    /// VC-allocation latency of shared-column routers (2 — MECS-style input
    /// concentration deepens arbitration, Table 1).
    pub column_va_latency: u32,
    /// VC-allocation latency of plain mesh routers.
    pub mesh_va_latency: u32,
    /// Crossbar traversal latency of every router.
    pub xt_latency: u32,
    /// Route inter-domain traffic (different row, non-column destination)
    /// through the nearest shared column instead of plain XY, so VM-to-VM
    /// transfers never turn inside an unprotected third-party router: one
    /// MECS express hop to the column, the QOS-protected column to the
    /// destination's row, then the mesh out along that row. This is the
    /// fabric image of `TopologyAwareChip::inter_domain_route` in
    /// `taqos-core`. Off by default: same-chip traffic then routes plain XY.
    pub inter_domain_via_column: bool,
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig {
            width: 8,
            height: 8,
            shared_columns: [4u16].into_iter().collect(),
            injection_vcs: 2,
            network_vcs: 4,
            express_vcs: 6,
            vc_depth: 4,
            column_reserved_vcs: 1,
            ejection_slots: 2,
            source_window: 16,
            flit_bytes: 16,
            column_va_latency: 2,
            mesh_va_latency: 1,
            xt_latency: 1,
            inter_domain_via_column: false,
        }
    }
}

impl ChipConfig {
    /// The paper's target chip: an 8×8 concentrated grid with one shared
    /// column in the middle of the die (x = 4).
    pub fn paper_8x8() -> Self {
        Self::default()
    }

    /// A custom-sized chip with the given shared columns and default port
    /// provisioning.
    pub fn with_size(width: usize, height: usize, shared_columns: BTreeSet<u16>) -> Self {
        ChipConfig {
            width,
            height,
            shared_columns,
            ..Self::default()
        }
    }

    /// Disables the QOS overlay's buffer reservations (used when the same
    /// fabric is simulated without QOS for interference comparisons).
    pub fn without_reservations(mut self) -> Self {
        self.column_reserved_vcs = 0;
        self
    }

    /// Enables shared-column transit for inter-domain traffic (see
    /// [`Self::inter_domain_via_column`]).
    #[must_use]
    pub fn with_inter_domain_via_column(mut self) -> Self {
        self.inter_domain_via_column = true;
        self
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// Node identifier of grid position `(x, y)` (row-major).
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId((y * self.width + x) as u16)
    }

    /// Grid position of a node (inverse of [`Self::node_at`]).
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.index() % self.width, node.index() / self.width)
    }

    /// Whether column `x` is a shared-resource column.
    pub fn is_shared_column(&self, x: usize) -> bool {
        u16::try_from(x).is_ok_and(|x| self.shared_columns.contains(&x))
    }

    /// Whether `node` is a shared-column (QOS) router.
    pub fn is_qos_node(&self, node: NodeId) -> bool {
        self.is_shared_column(self.coords(node).0)
    }

    /// The upstream mesh neighbour whose traffic arrives travelling in
    /// `dir` (the shared XY substrate of [`crate::mesh2d`]).
    fn upstream(&self, x: usize, y: usize, dir: Direction) -> Option<(usize, usize)> {
        crate::mesh2d::grid_geometry::upstream(self.width, self.height, x, y, dir)
    }

    /// The downstream mesh neighbour reached by sending in `dir`.
    fn downstream(&self, x: usize, y: usize, dir: Direction) -> Option<(usize, usize)> {
        crate::mesh2d::grid_geometry::downstream(self.width, self.height, x, y, dir)
    }

    /// XY dimension-order routing: the direction a packet at `(x, y)` headed
    /// for `dst` takes next, or `None` if it ejects here.
    fn xy_direction(&self, x: usize, y: usize, dst: NodeId) -> Option<Direction> {
        crate::mesh2d::grid_geometry::xy_direction(self.width, x, y, dst)
    }

    /// The shared column nearest to `x` (by row distance, the westernmost
    /// among equidistant ones) — the same tie-break as
    /// `TopologyAwareChip::nearest_shared_column` in `taqos-core`, so the
    /// fabric's inter-domain transit column and the chip model's agree.
    fn nearest_shared_column(&self, x: usize) -> u16 {
        *self
            .shared_columns
            .iter()
            .min_by_key(|&&c| usize::from(c).abs_diff(x))
            .expect("build() guarantees at least one shared column")
    }

    /// Shared columns strictly east (`East`) or west (`West`) of `x`, in
    /// travel order.
    fn shared_columns_towards(&self, x: usize, dir: Direction) -> Vec<u16> {
        match dir {
            Direction::East => self
                .shared_columns
                .iter()
                .copied()
                .filter(|&c| usize::from(c) > x)
                .collect(),
            Direction::West => {
                let mut cols: Vec<u16> = self
                    .shared_columns
                    .iter()
                    .copied()
                    .filter(|&c| usize::from(c) < x)
                    .collect();
                cols.reverse();
                cols
            }
            _ => Vec::new(),
        }
    }

    /// Builds the hybrid fabric.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty, exceeds the `NodeId` range, or a shared
    /// column lies outside the grid.
    pub fn build(&self) -> ChipSpec {
        assert!(
            self.width >= 1 && self.height >= 1,
            "chip must be non-empty"
        );
        assert!(
            self.num_nodes() <= usize::from(u16::MAX),
            "chip exceeds the NodeId range"
        );
        assert!(
            !self.shared_columns.is_empty(),
            "a topology-aware chip needs at least one shared column"
        );
        for &c in &self.shared_columns {
            assert!(
                usize::from(c) < self.width,
                "shared column {c} outside the {}-wide grid",
                self.width
            );
        }
        ChipBuilder::new(self).build()
    }
}

/// Key identifying a network input port during spec construction, so
/// upstream routers can reference downstream port indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum PortKey {
    /// Mesh input carrying traffic travelling in `dir`.
    Mesh(Direction),
    /// Express (multidrop) input fed by the channel driven from column
    /// `from_x` of the same row.
    Express { from_x: usize },
}

struct ChipBuilder<'a> {
    config: &'a ChipConfig,
    inputs: Vec<Vec<InputPortSpec>>,
    input_index: Vec<BTreeMap<PortKey, usize>>,
}

impl<'a> ChipBuilder<'a> {
    fn new(config: &'a ChipConfig) -> Self {
        ChipBuilder {
            config,
            inputs: Vec::with_capacity(config.num_nodes()),
            input_index: Vec::with_capacity(config.num_nodes()),
        }
    }

    /// Pass 1: create every router's input ports and remember their indices.
    fn build_inputs(&mut self) {
        let cfg = self.config;
        let inj_vcs = VcConfig::new(cfg.injection_vcs, cfg.vc_depth);
        for node in 0..cfg.num_nodes() {
            let (x, y) = cfg.coords(NodeId(node as u16));
            let qos = cfg.is_shared_column(x);
            // The QOS overlay reserves VCs only at shared-column routers.
            let reserved = if qos { cfg.column_reserved_vcs } else { 0 };
            let mesh_vcs = VcConfig::with_reserved(cfg.network_vcs, cfg.vc_depth, reserved);
            let express_vcs = VcConfig::with_reserved(cfg.express_vcs, cfg.vc_depth, reserved);
            let mut ports = vec![InputPortSpec::injection("term", inj_vcs, 0)];
            let mut index = BTreeMap::new();
            let mut group = 1u8;
            for dir in Direction::all() {
                if let Some((ux, uy)) = cfg.upstream(x, y, dir) {
                    index.insert(PortKey::Mesh(dir), ports.len());
                    ports.push(InputPortSpec::network(
                        format!("in_{dir}"),
                        cfg.node_at(ux, uy),
                        dir,
                        0,
                        mesh_vcs,
                        group,
                    ));
                    group += 1;
                }
            }
            if qos {
                // Express inputs from every non-column node of this row. As
                // in the MECS column builder, all inputs arriving from one
                // direction share a single crossbar port (multidrop input
                // concentration).
                let east_group = group;
                let west_group = group + 1;
                for from_x in 0..cfg.width {
                    if from_x == x || cfg.is_shared_column(from_x) {
                        continue;
                    }
                    let (dir, xbar_group) = if from_x < x {
                        (Direction::East, east_group)
                    } else {
                        (Direction::West, west_group)
                    };
                    index.insert(PortKey::Express { from_x }, ports.len());
                    ports.push(InputPortSpec::network(
                        format!("mecs_{dir}_from_x{from_x}"),
                        cfg.node_at(from_x, y),
                        dir,
                        EXPRESS_CHANNEL,
                        express_vcs,
                        xbar_group,
                    ));
                }
            }
            self.inputs.push(ports);
            self.input_index.push(index);
        }
    }

    /// Pass 2: create outputs and routing tables.
    fn build_routers(&mut self) -> Vec<RouterSpec> {
        let cfg = self.config;
        let mut routers = Vec::with_capacity(cfg.num_nodes());
        for node in 0..cfg.num_nodes() {
            let (x, y) = cfg.coords(NodeId(node as u16));
            let qos = cfg.is_shared_column(x);
            let mut outputs: Vec<OutputPortSpec> = Vec::new();
            let mut mesh_out: BTreeMap<Direction, OutPortId> = BTreeMap::new();
            for dir in Direction::all() {
                if let Some((dx, dy)) = cfg.downstream(x, y, dir) {
                    let neighbour = cfg.node_at(dx, dy).index();
                    let in_port = self.input_index[neighbour][&PortKey::Mesh(dir)];
                    mesh_out.insert(dir, OutPortId(outputs.len()));
                    outputs.push(OutputPortSpec::network(
                        format!("out_{dir}"),
                        dir,
                        0,
                        vec![TargetSpec::single(
                            TargetEndpoint::Router {
                                router: neighbour,
                                in_port: InPortId(in_port),
                            },
                            1,
                        )],
                    ));
                }
            }
            let eject_port = OutPortId(outputs.len());
            outputs.push(OutputPortSpec::ejection("eject", node, 0));
            // Express outputs of non-column nodes: one multidrop channel per
            // row direction that has shared columns, dropping off at each.
            let mut express_out: BTreeMap<Direction, OutPortId> = BTreeMap::new();
            let nearest_column = cfg.nearest_shared_column(x);
            if !qos {
                for dir in [Direction::East, Direction::West] {
                    let columns = cfg.shared_columns_towards(x, dir);
                    if columns.is_empty() {
                        continue;
                    }
                    let targets = columns
                        .iter()
                        .map(|&c| {
                            let drop_node = cfg.node_at(usize::from(c), y).index();
                            let in_port =
                                self.input_index[drop_node][&PortKey::Express { from_x: x }];
                            let mut covers: Vec<NodeId> = (0..cfg.height)
                                .map(|dy| cfg.node_at(usize::from(c), dy))
                                .collect();
                            // Inter-domain transit rides this channel to the
                            // *nearest* column: its drop must also cover the
                            // unprotected destinations such packets carry.
                            if cfg.inter_domain_via_column && c == nearest_column {
                                covers.extend(
                                    (0..cfg.num_nodes())
                                        .map(|n| NodeId(n as u16))
                                        .filter(|&n| !cfg.is_qos_node(n)),
                                );
                            }
                            TargetSpec::covering(
                                TargetEndpoint::Router {
                                    router: drop_node,
                                    in_port: InPortId(in_port),
                                },
                                (i64::from(c) - x as i64).unsigned_abs() as u32,
                                covers,
                            )
                        })
                        .collect();
                    express_out.insert(dir, OutPortId(outputs.len()));
                    outputs.push(OutputPortSpec::network(
                        format!("mecs_{dir}"),
                        dir,
                        EXPRESS_CHANNEL,
                        targets,
                    ));
                }
            }

            let mut route_table: BTreeMap<NodeId, Vec<OutPortId>> = BTreeMap::new();
            for dst in 0..cfg.num_nodes() {
                let dst = NodeId(dst as u16);
                let (dx, dy) = cfg.coords(dst);
                let out = if !qos && cfg.is_shared_column(dx) {
                    // Topology-aware: destinations inside a shared column are
                    // one MECS express hop away along this node's own row.
                    let dir = if dx > x {
                        Direction::East
                    } else {
                        Direction::West
                    };
                    express_out[&dir]
                } else if !qos && cfg.inter_domain_via_column && dy != y {
                    // Inter-domain transit: a different-row unprotected
                    // destination is reached through the nearest shared
                    // column (express hop in; the column's reply rule turns
                    // at the destination's row and exits over the mesh).
                    // Same-row destinations keep plain XY — they need no
                    // turn, and diverting them through the column would
                    // bounce them between the column and the row.
                    let dir = if usize::from(nearest_column) > x {
                        Direction::East
                    } else {
                        Direction::West
                    };
                    express_out[&dir]
                } else if qos && !cfg.is_shared_column(dx) {
                    // Reply path: traffic leaving a shared column for an
                    // unprotected node first travels the QOS-protected column
                    // to the destination's row, then exits along that row
                    // over the mesh — so it never turns at an unprotected
                    // third-party router. This is the fabric image of
                    // `TopologyAwareChip::memory_reply_route`.
                    let dir = if dy > y {
                        Direction::South
                    } else if dy < y {
                        Direction::North
                    } else if dx > x {
                        Direction::East
                    } else {
                        Direction::West
                    };
                    mesh_out[&dir]
                } else {
                    match cfg.xy_direction(x, y, dst) {
                        Some(dir) => mesh_out[&dir],
                        None => eject_port,
                    }
                };
                route_table.insert(dst, vec![out]);
            }

            routers.push(RouterSpec {
                node: NodeId(node as u16),
                inputs: self.inputs[node].clone(),
                outputs,
                route_table,
                va_latency: if qos {
                    cfg.column_va_latency
                } else {
                    cfg.mesh_va_latency
                },
                xt_latency: cfg.xt_latency,
            });
        }
        routers
    }

    fn build(mut self) -> ChipSpec {
        let cfg = self.config;
        self.build_inputs();
        let routers = self.build_routers();
        let sources = (0..cfg.num_nodes())
            .map(|node| SourceSpec {
                flow: FlowId(node as u16),
                node: NodeId(node as u16),
                router: node,
                in_port: InPortId(0),
                name: format!("n{node}.term"),
                window: cfg.source_window,
            })
            .collect();
        let sinks = (0..cfg.num_nodes())
            .map(|node| {
                let (x, _) = cfg.coords(NodeId(node as u16));
                SinkSpec {
                    node: NodeId(node as u16),
                    // Shared-column terminals are the memory controllers.
                    name: if cfg.is_shared_column(x) {
                        format!("n{node}.mc")
                    } else {
                        format!("n{node}.sink")
                    },
                    slots: cfg.ejection_slots,
                }
            })
            .collect();
        let qos_nodes = (0..cfg.num_nodes())
            .map(|n| NodeId(n as u16))
            .filter(|&n| cfg.is_qos_node(n))
            .collect();
        let spec = NetworkSpec {
            name: format!(
                "chip_{}x{}_cols{}",
                cfg.width,
                cfg.height,
                cfg.shared_columns.len()
            ),
            routers,
            sources,
            sinks,
            flit_bytes: cfg.flit_bytes,
        };
        spec.validate()
            .expect("generated chip specification must be valid");
        ChipSpec {
            config: cfg.clone(),
            spec,
            qos_nodes,
        }
    }
}

/// A built hybrid chip fabric: the executable [`NetworkSpec`] plus the
/// per-router QOS flags of the shared-column overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// The configuration this fabric was built from.
    pub config: ChipConfig,
    /// The executable network specification.
    pub spec: NetworkSpec,
    /// Routers that carry QOS hardware (flow tables, reserved VCs,
    /// preemption support) — exactly the shared-column routers.
    pub qos_nodes: BTreeSet<NodeId>,
}

impl ChipSpec {
    /// Per-router QOS flags, indexed like [`NetworkSpec::routers`].
    pub fn qos_flags(&self) -> Vec<bool> {
        self.spec
            .routers
            .iter()
            .map(|r| self.qos_nodes.contains(&r.node))
            .collect()
    }

    /// Number of routers carrying QOS hardware.
    pub fn qos_router_count(&self) -> usize {
        self.qos_nodes.len()
    }

    /// Fraction of the chip's routers that require QOS hardware; the
    /// complement is the cost saving of the topology-aware approach over
    /// chip-wide QOS.
    pub fn qos_router_fraction(&self) -> f64 {
        self.qos_router_count() as f64 / self.spec.routers.len() as f64
    }

    /// Node identifiers of the memory-controller terminals (shared-column
    /// sinks), in index order.
    pub fn memory_controllers(&self) -> Vec<NodeId> {
        self.qos_nodes.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taqos_netsim::spec::InputKind;

    #[test]
    fn paper_chip_builds_a_valid_spec() {
        let chip = ChipConfig::paper_8x8().build();
        assert_eq!(chip.spec.routers.len(), 64);
        assert_eq!(chip.spec.sources.len(), 64);
        assert_eq!(chip.spec.sinks.len(), 64);
        assert!(chip.spec.validate().is_ok());
        assert_eq!(chip.qos_router_count(), 8);
        assert!((chip.qos_router_fraction() - 0.125).abs() < 1e-12);
        assert_eq!(chip.qos_flags().iter().filter(|&&f| f).count(), 8);
    }

    #[test]
    fn every_non_column_node_has_an_express_route_to_every_shared_column() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        for router in &chip.spec.routers {
            let (x, _) = config.coords(router.node);
            if config.is_shared_column(x) {
                continue;
            }
            for &c in &config.shared_columns {
                for dy in 0..config.height {
                    let dst = config.node_at(usize::from(c), dy);
                    let out = router.route_table[&dst][0];
                    assert!(
                        router.outputs[out.0].name.starts_with("mecs_"),
                        "router {} routes {dst} via {}",
                        router.node,
                        router.outputs[out.0].name
                    );
                }
            }
        }
    }

    #[test]
    fn express_channels_drop_on_the_same_row_with_row_distance_delay() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        let router = &chip.spec.routers[config.node_at(1, 3).index()];
        let express = router
            .outputs
            .iter()
            .find(|o| o.name == "mecs_E")
            .expect("node (1,3) has an eastward express channel");
        assert_eq!(express.targets.len(), 1);
        let target = &express.targets[0];
        let TargetEndpoint::Router { router: drop, .. } = target.endpoint else {
            panic!("express targets are routers");
        };
        assert_eq!(drop, config.node_at(4, 3).index());
        assert_eq!(target.wire_delay, 3);
        assert_eq!(target.covers.len(), 8);
    }

    #[test]
    fn column_routers_concentrate_express_inputs_per_direction() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        let router = &chip.spec.routers[config.node_at(4, 2).index()];
        let express_inputs = router
            .inputs
            .iter()
            .filter(|p| p.name.starts_with("mecs_"))
            .count();
        // 7 non-column nodes in the row feed the column router.
        assert_eq!(express_inputs, 7);
        // 1 terminal + 4 mesh + 2 shared express groups.
        assert_eq!(router.xbar_input_groups(), 7);
        // Non-column routers have no express inputs at all.
        let plain = &chip.spec.routers[config.node_at(2, 2).index()];
        assert!(plain.inputs.iter().all(|p| !p.name.starts_with("mecs_")));
    }

    #[test]
    fn qos_provisioning_is_confined_to_shared_columns() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        for router in &chip.spec.routers {
            let qos = chip.qos_nodes.contains(&router.node);
            for port in &router.inputs {
                if matches!(port.kind, InputKind::Network { .. }) {
                    if qos {
                        assert_eq!(port.vcs.reserved, 1, "column port {}", port.name);
                    } else {
                        assert_eq!(port.vcs.reserved, 0, "mesh port {}", port.name);
                    }
                }
            }
            let expected_va = if qos { 2 } else { 1 };
            assert_eq!(router.va_latency, expected_va, "router {}", router.node);
        }
    }

    #[test]
    fn multiple_shared_columns_share_one_multidrop_channel_per_direction() {
        let config = ChipConfig::with_size(8, 4, [2u16, 5].into_iter().collect());
        let chip = config.build();
        // Node (0, 1) reaches both columns through a single eastward channel
        // with two drop-off points.
        let router = &chip.spec.routers[config.node_at(0, 1).index()];
        let express = router
            .outputs
            .iter()
            .find(|o| o.name == "mecs_E")
            .expect("eastward express exists");
        assert_eq!(express.targets.len(), 2);
        assert_eq!(express.targets[0].wire_delay, 2);
        assert_eq!(express.targets[1].wire_delay, 5);
        // A node between the columns drives one channel per direction.
        let mid = &chip.spec.routers[config.node_at(3, 1).index()];
        assert!(mid.outputs.iter().any(|o| o.name == "mecs_E"));
        assert!(mid.outputs.iter().any(|o| o.name == "mecs_W"));
        assert_eq!(chip.qos_router_count(), 8);
    }

    #[test]
    fn mesh_routes_are_untouched_for_non_column_destinations() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        let router = &chip.spec.routers[config.node_at(1, 1).index()];
        // Destination (2, 5) is not in a shared column: XY goes East first.
        let out = router.route_table[&config.node_at(2, 5)][0];
        assert_eq!(router.outputs[out.0].name, "out_E");
        // Self destination ejects.
        let eject = router.route_table[&config.node_at(1, 1)][0];
        assert_eq!(router.outputs[eject.0].name, "eject");
    }

    #[test]
    fn inter_domain_flag_routes_cross_row_traffic_via_the_nearest_column() {
        let config = ChipConfig::paper_8x8().with_inter_domain_via_column();
        let chip = config.build();
        let router = &chip.spec.routers[config.node_at(1, 1).index()];
        // A different-row unprotected destination now transits the shared
        // column: one express hop east toward x = 4.
        let out = router.route_table[&config.node_at(2, 5)][0];
        assert_eq!(router.outputs[out.0].name, "mecs_E");
        // Same-row destinations keep plain XY (no turn needed, and a column
        // detour would bounce between the column and the row).
        let out = router.route_table[&config.node_at(6, 1)][0];
        assert_eq!(router.outputs[out.0].name, "out_E");
        let out = router.route_table[&config.node_at(0, 1)][0];
        assert_eq!(router.outputs[out.0].name, "out_W");
        // Self destination still ejects.
        let eject = router.route_table[&config.node_at(1, 1)][0];
        assert_eq!(router.outputs[eject.0].name, "eject");
        // Multi-column grids stay valid: the nearest column's drop point
        // covers the unprotected destinations riding the shared channel.
        let multi = ChipConfig::with_size(8, 4, [2u16, 5].into_iter().collect())
            .with_inter_domain_via_column();
        let chip = multi.build();
        let router = &chip.spec.routers[multi.node_at(0, 1).index()];
        let out = router.route_table[&multi.node_at(3, 0)][0];
        assert_eq!(router.outputs[out.0].name, "mecs_E");
        let port = &router.outputs[out.0];
        assert!(port.targets[0].covers.contains(&multi.node_at(3, 0)));
        assert!(!port.targets[1].covers.contains(&multi.node_at(3, 0)));
    }

    #[test]
    fn column_routers_route_replies_column_first() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        let router = &chip.spec.routers[config.node_at(4, 2).index()];
        // A destination on another row: stay inside the protected column
        // until its row is reached (Y before X — the reply rule).
        let out = router.route_table[&config.node_at(1, 5)][0];
        assert_eq!(router.outputs[out.0].name, "out_S");
        let out = router.route_table[&config.node_at(6, 0)][0];
        assert_eq!(router.outputs[out.0].name, "out_N");
        // On the destination's own row the reply exits over the mesh.
        let out = router.route_table[&config.node_at(1, 2)][0];
        assert_eq!(router.outputs[out.0].name, "out_W");
        let out = router.route_table[&config.node_at(6, 2)][0];
        assert_eq!(router.outputs[out.0].name, "out_E");
        // Destinations inside the column keep plain column routing.
        let out = router.route_table[&config.node_at(4, 7)][0];
        assert_eq!(router.outputs[out.0].name, "out_S");
        let eject = router.route_table[&config.node_at(4, 2)][0];
        assert_eq!(router.outputs[eject.0].name, "eject");
    }

    #[test]
    fn memory_controllers_are_the_shared_column_sinks() {
        let config = ChipConfig::paper_8x8();
        let chip = config.build();
        let mcs = chip.memory_controllers();
        assert_eq!(mcs.len(), 8);
        for mc in mcs {
            let (x, _) = config.coords(mc);
            assert_eq!(x, 4);
            assert!(chip.spec.sinks[mc.index()].name.ends_with(".mc"));
        }
    }

    #[test]
    #[should_panic(expected = "shared column")]
    fn shared_column_outside_the_grid_is_rejected() {
        ChipConfig::with_size(4, 4, [7u16].into_iter().collect()).build();
    }
}
