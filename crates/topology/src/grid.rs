//! Chip-level grid structures: tile coordinates, four-way concentration, XY
//! dimension-order routing, and MECS single-hop reachability.
//!
//! The topology-aware architecture places shared resources in dedicated
//! columns of an 8x8 grid of concentrated nodes (a 256-tile CMP with four
//! terminals per node). The operating-system support in `taqos-core` uses
//! these primitives to place domains, check convexity, and verify that every
//! node reaches a shared column in a single MECS hop.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Coordinate of a node in the chip-level grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column index (0 = west edge).
    pub x: u16,
    /// Row index (0 = north edge).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (i32::from(self.x) - i32::from(other.x)).unsigned_abs();
        let dy = (i32::from(self.y) - i32::from(other.y)).unsigned_abs();
        dx + dy
    }

    /// Whether two coordinates share a row or a column.
    pub fn aligned_with(self, other: Coord) -> bool {
        self.x == other.x || self.y == other.y
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// The chip-level grid of concentrated network nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipGrid {
    /// Nodes per row.
    pub width: u16,
    /// Nodes per column.
    pub height: u16,
    /// Terminals (tiles) concentrated at each node; 4 in the paper.
    pub concentration: u16,
}

impl ChipGrid {
    /// The paper's target system: a 256-tile CMP as an 8x8 grid of four-way
    /// concentrated nodes.
    pub fn paper() -> Self {
        ChipGrid {
            width: 8,
            height: 8,
            concentration: 4,
        }
    }

    /// Creates a grid with the given dimensions and concentration.
    pub fn new(width: u16, height: u16, concentration: u16) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        assert!(concentration > 0, "concentration must be positive");
        ChipGrid {
            width,
            height,
            concentration,
        }
    }

    /// Number of network nodes.
    pub fn nodes(&self) -> usize {
        usize::from(self.width) * usize::from(self.height)
    }

    /// Number of terminals (tiles) on the chip.
    pub fn tiles(&self) -> usize {
        self.nodes() * usize::from(self.concentration)
    }

    /// Whether `c` lies inside the grid.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Iterator over all node coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let width = self.width;
        (0..self.height).flat_map(move |y| (0..width).map(move |x| Coord::new(x, y)))
    }

    /// The XY dimension-order route from `from` to `to`, inclusive of both
    /// endpoints: first along the row (X), then along the column (Y).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the grid.
    pub fn xy_route(&self, from: Coord, to: Coord) -> Vec<Coord> {
        assert!(self.contains(from), "source {from} outside the grid");
        assert!(self.contains(to), "destination {to} outside the grid");
        let mut path = vec![from];
        let mut cur = from;
        while cur.x != to.x {
            cur.x = if to.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            path.push(cur);
        }
        while cur.y != to.y {
            cur.y = if to.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            path.push(cur);
        }
        path
    }

    /// Whether a MECS network reaches `to` from `from` in a single network
    /// hop (point-to-multipoint channels fully connect a node to every other
    /// node along each cardinal direction).
    pub fn mecs_single_hop(&self, from: Coord, to: Coord) -> bool {
        from != to && from.aligned_with(to)
    }

    /// Whether a node at `from` can reach column `column_x` with at most one
    /// dimension change under XY routing while touching only `from`'s row —
    /// i.e. the access pattern used to enter a shared-resource column: a row
    /// traversal on the node's own MECS row channel followed by the
    /// QOS-protected column.
    pub fn reaches_column_via_own_row(&self, from: Coord, column_x: u16) -> bool {
        column_x < self.width && self.contains(from)
    }

    /// Whether a set of coordinates forms a convex region in the sense
    /// required for domains: for every pair of members, both dimension-order
    /// paths (XY and YX) stay inside the region, so intra-domain traffic
    /// never leaves the domain.
    pub fn is_convex_region(&self, region: &BTreeSet<Coord>) -> bool {
        if region.is_empty() {
            return false;
        }
        if region.iter().any(|&c| !self.contains(c)) {
            return false;
        }
        for &a in region {
            for &b in region {
                if a == b {
                    continue;
                }
                let xy_inside = self.xy_route(a, b).iter().all(|c| region.contains(c));
                let yx_inside = self
                    .xy_route(Coord::new(a.y, a.x), Coord::new(b.y, b.x))
                    .iter()
                    .map(|c| Coord::new(c.y, c.x))
                    .all(|c| region.contains(&c));
                if !xy_inside || !yx_inside {
                    return false;
                }
            }
        }
        true
    }

    /// The coordinates of a rectangular region.
    pub fn rectangle(&self, top_left: Coord, width: u16, height: u16) -> BTreeSet<Coord> {
        let mut set = BTreeSet::new();
        for dy in 0..height {
            for dx in 0..width {
                let c = Coord::new(top_left.x + dx, top_left.y + dy);
                if self.contains(c) {
                    set.insert(c);
                }
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_has_256_tiles() {
        let grid = ChipGrid::paper();
        assert_eq!(grid.nodes(), 64);
        assert_eq!(grid.tiles(), 256);
        assert_eq!(grid.coords().count(), 64);
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let grid = ChipGrid::paper();
        let path = grid.xy_route(Coord::new(1, 1), Coord::new(3, 4));
        assert_eq!(path.first(), Some(&Coord::new(1, 1)));
        assert_eq!(path.last(), Some(&Coord::new(3, 4)));
        assert_eq!(path.len(), 6);
        // The turn happens at (3, 1).
        assert!(path.contains(&Coord::new(3, 1)));
        assert!(!path.contains(&Coord::new(1, 4)));
    }

    #[test]
    fn manhattan_and_alignment() {
        let a = Coord::new(2, 3);
        let b = Coord::new(5, 3);
        assert_eq!(a.manhattan(b), 3);
        assert!(a.aligned_with(b));
        assert!(!a.aligned_with(Coord::new(5, 4)));
    }

    #[test]
    fn mecs_reaches_row_and_column_in_one_hop() {
        let grid = ChipGrid::paper();
        let from = Coord::new(2, 5);
        assert!(grid.mecs_single_hop(from, Coord::new(7, 5)));
        assert!(grid.mecs_single_hop(from, Coord::new(2, 0)));
        assert!(!grid.mecs_single_hop(from, Coord::new(3, 4)));
        assert!(!grid.mecs_single_hop(from, from));
    }

    #[test]
    fn rectangles_are_convex_and_l_shapes_are_not() {
        let grid = ChipGrid::paper();
        let rect = grid.rectangle(Coord::new(1, 1), 3, 2);
        assert_eq!(rect.len(), 6);
        assert!(grid.is_convex_region(&rect));

        let mut l_shape = grid.rectangle(Coord::new(0, 0), 2, 1);
        l_shape.insert(Coord::new(0, 1));
        l_shape.insert(Coord::new(0, 2));
        l_shape.insert(Coord::new(1, 2));
        assert!(!grid.is_convex_region(&l_shape));

        assert!(!grid.is_convex_region(&BTreeSet::new()));
    }

    #[test]
    fn single_cell_is_convex() {
        let grid = ChipGrid::paper();
        let single: BTreeSet<Coord> = [Coord::new(4, 4)].into_iter().collect();
        assert!(grid.is_convex_region(&single));
    }

    #[test]
    fn every_node_reaches_every_column_via_its_row() {
        let grid = ChipGrid::paper();
        for c in grid.coords() {
            for col in 0..grid.width {
                assert!(grid.reaches_column_via_own_row(c, col));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the grid")]
    fn routes_outside_the_grid_panic() {
        let grid = ChipGrid::new(4, 4, 4);
        grid.xy_route(Coord::new(0, 0), Coord::new(9, 0));
    }
}
