//! Topology explorer: compare the five shared-region topologies in one run.
//!
//! For each candidate topology (mesh x1/x2/x4, MECS, DPS) the example prints
//! a one-line summary combining the three axes the paper evaluates:
//! performance (average latency at a moderate load), router area, and router
//! energy on a 3-hop route. This is the "which organisation should my shared
//! region use?" view a designer would want.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example topology_explorer [-- <injection-rate-percent>]
//! ```

use taqos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rate_pct: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8.0);
    let rate = rate_pct / 100.0;
    let column = ColumnConfig::paper();
    let area_model = AreaModel::nm32();
    let energy_model = EnergyModel::nm32();

    println!("uniform-random traffic at {rate_pct:.0}% injection per injector, PVC, 32 nm models");
    println!("{:-<100}", "");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14} {:>16} {:>12}",
        "topology",
        "latency cyc",
        "accepted f/c",
        "preempted %",
        "area mm^2",
        "3-hop energy pJ",
        "bisection B/c"
    );
    println!("{:-<100}", "");

    for topology in ColumnTopology::all() {
        let sim = SharedRegionSim::new(topology).with_column(column);
        let generators = uniform_random(&column, rate, PacketSizeMix::paper(), 11);
        let stats = sim.run_open(
            Box::new(sim.default_policy()),
            generators,
            OpenLoopConfig {
                warmup: 3_000,
                measure: 15_000,
                drain: 3_000,
            },
        )?;
        let area = area_model.topology_area(topology, &column);
        let energy = energy_model.route_energy(topology, &column, 3);
        println!(
            "{:<10} {:>12.1} {:>14.2} {:>14.2} {:>14.4} {:>16.1} {:>12}",
            topology.name(),
            stats.avg_latency(),
            stats.accepted_throughput(),
            stats.preempted_packet_fraction() * 100.0,
            area.total_mm2(),
            energy.total_pj(),
            bisection_bandwidth_bytes(topology, &column),
        );
    }
    println!("{:-<100}", "");
    println!("DPS combines mesh-like router cost with MECS-like latency and energy on");
    println!("multi-hop transfers — the trade-off the paper proposes for the shared region.");
    Ok(())
}
