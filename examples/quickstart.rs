//! Quickstart: simulate the QOS-enabled shared region and print the basics.
//!
//! Builds the paper's 8-node shared-resource column with the Destination
//! Partitioned Subnets (DPS) topology, drives it with uniform-random traffic
//! from all 64 injectors under Preemptive Virtual Clock, and prints latency,
//! throughput and fairness numbers.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use taqos::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The shared region: one column of the 8x8 grid, DPS topology,
    // the paper's Table 1 parameters.
    let sim = SharedRegionSim::new(ColumnTopology::Dps);
    println!(
        "topology        : {} ({} nodes, {} injectors)",
        sim.topology(),
        sim.column().nodes,
        sim.column().num_flows()
    );

    // Every injector offers 5% of link bandwidth, an even mix of 1-flit
    // requests and 4-flit replies, to destinations drawn uniformly at random.
    let generators = uniform_random(sim.column(), 0.05, PacketSizeMix::paper(), 42);

    // Preemptive Virtual Clock with equal rates for all 64 flows.
    let policy = sim.default_policy();
    println!(
        "QOS policy      : {} (frame {} cycles, reserved quota {} flits/frame)",
        policy.name(),
        policy.frame_len().unwrap_or(0),
        policy.reserved_quota(FlowId(0)).unwrap_or(0)
    );

    // Warm up, measure, drain.
    let stats = sim.run_open(
        Box::new(policy),
        generators,
        OpenLoopConfig {
            warmup: 5_000,
            measure: 20_000,
            drain: 5_000,
        },
    )?;

    println!(
        "delivered       : {} packets ({} flits)",
        stats.delivered_packets, stats.delivered_flits
    );
    println!("avg latency     : {:.1} cycles", stats.avg_latency());
    println!("max latency     : {} cycles", stats.max_latency);
    println!(
        "throughput      : {:.2} flits/cycle accepted by the column",
        stats.accepted_throughput()
    );
    println!(
        "preemptions     : {:.3}% of packets",
        stats.preempted_packet_fraction() * 100.0
    );

    // Per-flow fairness of the delivered throughput.
    let per_flow = stats.measured_flits_per_flow();
    let summary = ThroughputSummary::from_observations(&per_flow).expect("flows exist");
    println!(
        "per-flow flits  : mean {:.0}, min {:.0} ({:.1}% of mean), max {:.0} ({:.1}% of mean)",
        summary.mean,
        summary.min,
        summary.min_pct_of_mean(),
        summary.max,
        summary.max_pct_of_mean()
    );

    // Zero-load sanity check against the analytic model.
    println!(
        "zero-load check : analytic {:.1} cycles at the average distance",
        zero_load_latency_uniform(ColumnTopology::Dps, sim.column().nodes)
    );
    Ok(())
}
