//! Server consolidation: several virtual machines with different priorities
//! share one chip.
//!
//! This example exercises the chip-level half of the architecture:
//!
//! 1. the hypervisor launches three VMs with different service weights onto
//!    the 256-tile chip, allocating convex domains and co-scheduling only
//!    friendly threads on each node;
//! 2. the per-flow rates of the QOS-protected shared column are programmed
//!    from the VM weights;
//! 3. the shared column is simulated under memory (hotspot) traffic with
//!    Preemptive Virtual Clock using those rates, and the delivered
//!    throughput per chip row is reported — rows hosting the premium VM
//!    receive proportionally more memory bandwidth.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example server_consolidation
//! ```

use taqos::prelude::*;
use taqos::qos::pvc::{PvcConfig, PvcPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Chip-level: place the tenants -------------------------------------
    let chip = TopologyAwareChip::paper_default();
    println!(
        "chip            : {}x{} nodes, {} tiles, {:.1}% of routers need QOS hardware",
        chip.grid().width,
        chip.grid().height,
        chip.grid().tiles(),
        chip.qos_router_fraction() * 100.0
    );
    let mut hypervisor = Hypervisor::new(chip);

    let premium = hypervisor.launch_vm(&VmSpec::new("premium-db", 32, 8))?;
    let standard = hypervisor.launch_vm(&VmSpec::new("web-frontend", 24, 3))?;
    let batch = hypervisor.launch_vm(&VmSpec::new("batch-analytics", 16, 1))?;
    for placement in hypervisor.placements() {
        println!(
            "tenant {:<16}: {} threads on {} nodes (weight {})",
            placement.vm,
            placement.total_threads(),
            placement.threads_per_node.len(),
            placement.weight
        );
    }
    assert!(hypervisor.co_scheduling_respected());
    println!(
        "domains         : {:?} are convex and disjoint",
        [premium, standard, batch].map(|d| d.0)
    );

    // --- Program the shared column and simulate it -------------------------
    let column = ColumnConfig::paper();
    let rates = hypervisor.program_column_rates(&column);
    let policy = PvcPolicy::new(PvcConfig::paper(), rates.clone());

    let sim = SharedRegionSim::new(ColumnTopology::Dps).with_column(column);
    // All injectors stream memory traffic towards the memory controller at
    // node 0 of the column, far beyond its capacity.
    let generators = hotspot(&column, 0.05, PacketSizeMix::paper(), NodeId(0), 7);
    let stats = sim.run_open(
        Box::new(policy),
        generators,
        OpenLoopConfig {
            warmup: 5_000,
            measure: 30_000,
            drain: 5_000,
        },
    )?;

    // --- Report per-row memory bandwidth ------------------------------------
    println!();
    println!("memory bandwidth delivered per chip row (flits during the measurement window):");
    let per_flow = stats.measured_flits_per_flow();
    for row in 0..column.nodes {
        let row_flits: u64 = (0..column.injectors_per_node())
            .map(|inj| per_flow[column.flow_of(row, inj).index()])
            .sum();
        let rate = rates.rate(column.flow_of(row, 1));
        let owner = hypervisor
            .placements()
            .iter()
            .find(|p| {
                hypervisor
                    .chip()
                    .domain(p.domain)
                    .map(|d| d.rows().contains(&(row as u16)))
                    .unwrap_or(false)
            })
            .map(|p| p.vm.as_str())
            .unwrap_or("(unallocated)");
        println!(
            "  row {row}: {row_flits:>6} flits  (programmed rate {:.4}, tenant: {owner})",
            rate
        );
    }
    println!();
    println!("higher-weight tenants receive proportionally more of the contended memory port,");
    println!("while no row is starved — the guarantee PVC provides inside the shared region.");
    Ok(())
}
