//! Adversarial battery: one named denial-of-service attack per arbitration
//! point of the memory path, and the p99 bound PVC holds each one to.
//!
//! The original version of this example staged a single attack — a tenant
//! adjacent to the memory controller flooding it. That scenario has grown
//! into [`taqos::core::experiment::adversarial`]: a battery with one named
//! attack per arbitration point of the memory path (fabric VA/SA where row
//! traffic merges into the column, the column's PVC arbitration itself,
//! admission into the controller's bounded request queue, and FR-FCFS bank
//! scheduling inside the controller). Each attack drives its point to
//! saturation from a hostile tenant while a modest victim shares it; the
//! experiment measures the victim's 99th-percentile latency with the point
//! unprotected and under PVC — the PVC number *is* the isolation bound.
//!
//! Two heterogeneity experiments complete the picture: VMs with different
//! service weights must receive memory service proportional to their
//! programmed rates, and a VM live-migrated away from a hog mid-run must
//! keep its bound *through* the transition (rates reprogrammed and MLP
//! windows phased over at the same instant, in-flight requests drained).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example denial_of_service
//! ```

use taqos::core::experiment::adversarial::{
    attack_battery, migration_experiment, weighted_vm_experiment, AttackConfig, MigrationConfig,
    WeightedVmConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = AttackConfig::default();
    println!(
        "adversarial battery on the {}x{} chip ({} shared column(s)), {}-cycle window",
        config.width, config.height, config.columns, config.measure
    );
    println!();
    println!(
        "{:<20} {:<22} {:>16} {:>12} {:>14}",
        "attack", "arbitration point", "victim p99 no-QOS", "PVC bound", "victim service"
    );
    let reports = attack_battery(&config);
    for report in &reports {
        println!(
            "{:<20} {:<22} {:>16} {:>12} {:>7} -> {:<5}",
            report.attack,
            report.point.label(),
            report.victim_p99_unprotected,
            report.bound(),
            report.victim_service_unprotected,
            report.victim_service_pvc,
        );
    }
    println!();
    for report in &reports {
        assert!(
            report.holds(),
            "{}: PVC bound {} exceeds unprotected p99 {}",
            report.attack,
            report.bound(),
            report.victim_p99_unprotected
        );
    }
    println!("every attack is held to its measured p99 bound by PVC.");
    println!();

    // Heterogeneous tenants: service must track the programmed weights.
    let weighted = weighted_vm_experiment(&WeightedVmConfig::default());
    println!("--- weighted VMs (hypervisor-programmed rates) ---");
    for (i, ((&w, &rt), (delivered, programmed))) in weighted
        .vm_weights
        .iter()
        .zip(&weighted.round_trips_per_vm)
        .zip(
            weighted
                .delivered_shares
                .iter()
                .zip(&weighted.programmed_shares),
        )
        .enumerate()
    {
        println!(
            "vm{i} weight {w}: {rt} round trips, {:.1}% of service (programmed {:.1}%)",
            100.0 * delivered,
            100.0 * programmed
        );
    }
    println!(
        "worst share error {:.1}% — memory service tracks the programmed weights.",
        100.0 * weighted.worst_share_error
    );
    assert!(weighted.worst_share_error < 0.35);
    println!();

    // Live migration under attack: the bound holds through the transition.
    let migration = migration_experiment(&MigrationConfig::default());
    println!("--- live migration away from a hog, mid-run ---");
    println!(
        "old site completed {} round trips and drained to {} in flight; \
         new site completed {} round trips.",
        migration.old_site_round_trips,
        migration.old_site_in_flight,
        migration.new_site_round_trips
    );
    println!(
        "victim p99 through the transition: {} cycles; conservation held: {}.",
        migration.victim_p99, migration.conserved
    );
    assert!(migration.conserved, "request conservation must hold");
    assert_eq!(migration.old_site_in_flight, 0, "old site must drain");
    assert!(migration.old_site_round_trips > 0 && migration.new_site_round_trips > 0);
    Ok(())
}
