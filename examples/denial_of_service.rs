//! Denial-of-service resilience: a tenant adjacent to the memory controller
//! floods it and starves distant tenants — unless the shared region enforces
//! QOS.
//!
//! The attacker VM occupies the three nodes closest to the memory controller
//! (nodes 1–3 of the column) and drives every one of its 24 injectors at 30%
//! of link bandwidth. The victim tenants own the distant nodes 4–7 and only
//! ask for a modest 3% each from their terminals. The same scenario is run
//! twice — without QOS support and with Preemptive Virtual Clock — comparing
//! the bandwidth and latency each side obtains.
//!
//! Without QOS, locally fair round-robin arbitration compounds hop by hop
//! (the parking-lot effect): the attacker's traffic, merging close to the
//! memory controller, crowds out the victims' packets that must traverse the
//! attacker's routers. PVC restores each flow's fair share and the victims'
//! small demands are served in full.
//!
//! The second act arms the adversary with **injected faults** on the
//! victims' path: a transient outage of router 2 (the column hop every
//! victim packet must cross) plus 2% flit corruption across the region —
//! the hog keeps flooding while the fabric itself is failing. Dropped
//! packets are NACKed back to their sources and retransmitted, and the run
//! prints the measured isolation bound: the share of their fault-free PVC
//! bandwidth the victims keep on the failing fabric.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example denial_of_service
//! ```

use taqos::netsim::fault::{FaultEvent, FaultKind, FaultPlan};
use taqos::prelude::*;
use taqos::traffic::generators::{DestinationPattern, SyntheticGenerator};

const ATTACKER_NODES: [usize; 3] = [1, 2, 3];
const VICTIM_NODES: [usize; 4] = [4, 5, 6, 7];
const ATTACKER_RATE: f64 = 0.30;
const VICTIM_RATE: f64 = 0.03;

/// Builds the attack scenario's per-injector traffic.
fn attack_generators(column: &ColumnConfig, seed: u64) -> GeneratorSet {
    let mut generators: GeneratorSet = Vec::with_capacity(column.num_flows());
    for node in 0..column.nodes {
        for injector in 0..column.injectors_per_node() {
            let rate = if ATTACKER_NODES.contains(&node) {
                ATTACKER_RATE
            } else if VICTIM_NODES.contains(&node) && injector == 0 {
                VICTIM_RATE
            } else {
                0.0
            };
            if rate > 0.0 {
                generators.push(Box::new(SyntheticGenerator::open_loop(
                    rate,
                    PacketSizeMix::paper(),
                    DestinationPattern::Fixed(NodeId(0)),
                    seed + (node * 8 + injector) as u64,
                )));
            } else {
                generators.push(Box::new(IdleGenerator));
            }
        }
    }
    generators
}

/// The combined adversary's fault plan: router 2 — the hop every victim
/// packet must cross on its way to the controller — goes dark for 3 000
/// cycles of the measurement window, and 2% of head flits are corrupted
/// (dropped and NACKed for retransmission) throughout the run.
fn adversary_faults() -> FaultPlan {
    FaultPlan::new(0xD05)
        .with_event(FaultEvent::transient(
            10_000,
            13_000,
            FaultKind::RouterDown { router: 2 },
        ))
        .with_event(FaultEvent::permanent(
            0,
            FaultKind::CorruptFlits {
                probability_ppm: 20_000,
            },
        ))
}

fn run(policy: Box<dyn QosPolicy>, column: &ColumnConfig, faults: Option<FaultPlan>) -> NetStats {
    // Latency histograms on: the victims' tail (p99) is the interesting
    // number under an attack — means hide exactly the packets the hog hurts.
    let mut sim = SharedRegionSim::new(ColumnTopology::MeshX1)
        .with_column(*column)
        .with_sim_config(
            SimConfig::default().with_telemetry(TelemetryConfig::off().with_histograms(true)),
        );
    if let Some(plan) = faults {
        sim = sim.with_fault_plan(plan);
    }
    sim.run_open(
        policy,
        attack_generators(column, 99),
        OpenLoopConfig {
            warmup: 5_000,
            measure: 30_000,
            drain: 5_000,
        },
    )
    .expect("scenario runs")
}

/// Mean flits delivered per victim terminal and per attacker injector.
fn summarise(column: &ColumnConfig, stats: &NetStats) -> (f64, f64, f64) {
    let per_flow = stats.measured_flits_per_flow();
    let victims: Vec<u64> = VICTIM_NODES
        .iter()
        .map(|&node| per_flow[column.flow_of(node, 0).index()])
        .collect();
    let attackers: Vec<u64> = ATTACKER_NODES
        .iter()
        .flat_map(|&node| (0..column.injectors_per_node()).map(move |inj| (node, inj)))
        .map(|(node, inj)| per_flow[column.flow_of(node, inj).index()])
        .collect();
    let victim_mean = victims.iter().sum::<u64>() as f64 / victims.len() as f64;
    let victim_min = *victims.iter().min().expect("victims exist") as f64;
    let attacker_mean = attackers.iter().sum::<u64>() as f64 / attackers.len() as f64;
    (victim_mean, victim_min, attacker_mean)
}

/// 99th-percentile packet latency across the victims' terminals (exact
/// upper bound from the merged per-flow histograms), in cycles.
fn victim_p99(column: &ColumnConfig, stats: &NetStats) -> u64 {
    let mut hist = Hist64::default();
    for &node in &VICTIM_NODES {
        hist.merge(&stats.flows[column.flow_of(node, 0).index()].latency_hist);
    }
    hist.p99().unwrap_or(0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let column = ColumnConfig::paper();
    let window = 30_000.0;
    println!(
        "attacker VM on nodes 1-3: 24 injectors x {:.0}% towards the memory",
        ATTACKER_RATE * 100.0
    );
    println!(
        "controller at node 0; victim tenants on nodes 4-7 request {:.0}% each.",
        VICTIM_RATE * 100.0
    );
    println!();

    let no_qos = run(Box::new(FifoPolicy::new()), &column, None);
    let (victim_no, victim_min_no, attacker_no) = summarise(&column, &no_qos);

    let pvc = run(
        Box::new(taqos::qos::pvc::PvcPolicy::equal_rates(column.num_flows())),
        &column,
        None,
    );
    let (victim_pvc, victim_min_pvc, attacker_pvc) = summarise(&column, &pvc);

    println!("{:<36} {:>14} {:>14}", "", "no QOS", "PVC");
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "victim mean throughput (flits/cycle)",
        victim_no / window,
        victim_pvc / window
    );
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "victim worst-case (flits/cycle)",
        victim_min_no / window,
        victim_min_pvc / window
    );
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "attacker per-injector (flits/cycle)",
        attacker_no / window,
        attacker_pvc / window
    );
    println!(
        "{:<36} {:>14.1} {:>14.1}",
        "average packet latency (cycles)",
        no_qos.avg_latency(),
        pvc.avg_latency()
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "victim p99 latency (cycles)",
        victim_p99(&column, &no_qos),
        victim_p99(&column, &pvc)
    );
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "preempted packet fraction",
        no_qos.preempted_packet_fraction(),
        pvc.preempted_packet_fraction()
    );
    println!();

    let requested = VICTIM_RATE;
    println!(
        "victims requested {requested:.3} flits/cycle each; without QOS they receive {:.3},",
        victim_no / window
    );
    println!(
        "with PVC they receive {:.3} — the QOS-protected shared region isolates them from",
        victim_pvc / window
    );
    println!("the attacker, which is throttled towards its fair share of the memory port.");

    assert!(
        victim_pvc >= victim_no,
        "victims must not lose bandwidth when QOS is enabled"
    );

    // Act two: the same hog, now with the fabric failing under it.
    println!();
    println!("--- combined adversary: hog + injected faults on the victims' path ---");
    println!("router 2 dark for cycles 10000-13000, 2% flit corruption throughout.");
    println!();

    let no_qos_f = run(
        Box::new(FifoPolicy::new()),
        &column,
        Some(adversary_faults()),
    );
    let (victim_no_f, victim_min_no_f, attacker_no_f) = summarise(&column, &no_qos_f);
    let pvc_f = run(
        Box::new(taqos::qos::pvc::PvcPolicy::equal_rates(column.num_flows())),
        &column,
        Some(adversary_faults()),
    );
    let (victim_pvc_f, victim_min_pvc_f, attacker_pvc_f) = summarise(&column, &pvc_f);

    println!("{:<36} {:>14} {:>14}", "", "no QOS", "PVC");
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "victim mean throughput (flits/cycle)",
        victim_no_f / window,
        victim_pvc_f / window
    );
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "victim worst-case (flits/cycle)",
        victim_min_no_f / window,
        victim_min_pvc_f / window
    );
    println!(
        "{:<36} {:>14.3} {:>14.3}",
        "attacker per-injector (flits/cycle)",
        attacker_no_f / window,
        attacker_pvc_f / window
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "victim p99 latency (cycles)",
        victim_p99(&column, &no_qos_f),
        victim_p99(&column, &pvc_f)
    );
    println!(
        "{:<36} {:>14} {:>14}",
        "fault drops (router/corruption)",
        no_qos_f.fault.total_drops(),
        pvc_f.fault.total_drops()
    );
    println!();

    let isolation_bound = victim_pvc_f / victim_pvc;
    println!(
        "measured isolation bound: on the failing fabric the PVC-protected victims keep \
         {:.1}% of their fault-free bandwidth ({:.3} of {:.3} flits/cycle); without QOS \
         they get {:.3}.",
        100.0 * isolation_bound,
        victim_pvc_f / window,
        victim_pvc / window,
        victim_no_f / window,
    );

    let p99_clean = victim_p99(&column, &pvc);
    let p99_faulted = victim_p99(&column, &pvc_f);
    println!(
        "victim p99 bound through the attack: PVC holds the victims' 99th-percentile \
         latency at {p99_clean} cycles under the clean hog and {p99_faulted} cycles with \
         the fabric failing (no QOS: {} / {} cycles).",
        victim_p99(&column, &no_qos),
        victim_p99(&column, &no_qos_f),
    );

    assert!(pvc_f.fault.total_drops() > 0, "the fault plan must bite");
    assert!(
        victim_pvc_f >= victim_no_f,
        "victims must not lose bandwidth to QOS on a failing fabric"
    );
    Ok(())
}
