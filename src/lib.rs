//! # taqos — topology-aware quality-of-service for chip multiprocessors
//!
//! Umbrella crate of the TAQOS project, a from-scratch Rust reproduction of
//! *"Topology-aware Quality-of-Service Support in Highly Integrated Chip
//! Multiprocessors"* (Grot, Keckler, Mutlu — WIOSCA 2010). It re-exports the
//! component crates and hosts the runnable examples and the cross-crate
//! integration tests.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`netsim`]   | cycle-level NoC simulation substrate (flits, VCs, virtual cut-through, routers, preemption, statistics) |
//! | [`qos`]      | Preemptive Virtual Clock, ideal per-flow queuing, fairness mathematics |
//! | [`topology`] | mesh x1/x2/x4, MECS and DPS column topologies; chip-level grid primitives |
//! | [`traffic`]  | uniform random, tornado, hotspot and adversarial workloads |
//! | [`power`]    | 32 nm area and energy models (buffers, crossbar, flow state) |
//! | [`telemetry`] | deterministic observability: integer latency histograms, per-frame time series, flit-level trace export |
//! | [`core`]     | the paper's architecture: shared-region simulation, domains, OS support, experiments |
//!
//! ## Quick start
//!
//! ```rust
//! use taqos::prelude::*;
//!
//! // Simulate the paper's new DPS topology under hotspot traffic with PVC.
//! let sim = SharedRegionSim::new(ColumnTopology::Dps);
//! let generators = hotspot(sim.column(), 0.03, PacketSizeMix::paper(), NodeId(0), 1);
//! let stats = sim.run_open(
//!     Box::new(sim.default_policy()),
//!     generators,
//!     OpenLoopConfig::quick(),
//! )?;
//! assert!(stats.delivered_packets > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use taqos_core as core;
pub use taqos_netsim as netsim;
pub use taqos_power as power;
pub use taqos_qos as qos;
pub use taqos_telemetry as telemetry;
pub use taqos_topology as topology;
pub use taqos_traffic as traffic;

/// One-stop re-exports for examples and applications.
pub mod prelude {
    pub use taqos_core::prelude::*;
    pub use taqos_netsim::prelude::*;
    pub use taqos_power::prelude::*;
    pub use taqos_qos::prelude::*;
    pub use taqos_topology::prelude::*;
    pub use taqos_traffic::prelude::*;
}
